// Package netsim is a deterministic virtual-time network simulator used to
// reproduce CYRUS's latency experiments without a WAN testbed.
//
// The model is a fluid one: every in-flight transfer is a flow; at any
// instant each flow receives the max-min fair share of the capacities it
// traverses (its client↔CSP link cap, the paper's β̄_c, and the client's
// aggregate cap β, shared across parallel connections — paper §4.3). Time
// advances event-to-event: the simulator computes fair rates, finds the
// next flow completion or timer expiry, and jumps the clock there.
//
// Unlike a trace-driven model, netsim runs *real concurrent code* under
// virtual time: goroutines are spawned through Network.Go, block in
// Transfer/RoundTrip/Sleep/Group.Wait, and the clock only advances when
// every registered goroutine is blocked. The CYRUS client's actual upload
// and download paths — including protocol round trips and barrier structure
// — therefore produce the timings, not a re-implementation of them.
//
// Network implements vclock.Runtime, so it is a drop-in replacement for the
// real scheduler/clock used in production.
package netsim

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/vclock"
)

// Direction of a transfer, from the client's point of view.
type Direction int

// Transfer directions.
const (
	Up   Direction = iota // client -> CSP (upload)
	Down                  // CSP -> client (download)
)

func (d Direction) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// LinkConfig describes the path between one client node and one CSP.
type LinkConfig struct {
	RTT     time.Duration // request round-trip latency
	UpBps   float64       // client->CSP bandwidth cap, bytes/second (> 0)
	DownBps float64       // CSP->client bandwidth cap, bytes/second (> 0)
}

// NodeConfig describes a client node's aggregate bandwidth caps shared by
// all its parallel connections; 0 means unconstrained in that direction.
type NodeConfig struct {
	UpBps   float64
	DownBps float64
}

type link struct {
	cfg LinkConfig
}

type node struct {
	cfg   NodeConfig
	links map[string]*link // by CSP name
}

type flow struct {
	node      string
	csp       string
	dir       Direction
	remaining float64
	rate      float64
	done      chan struct{}
}

type timer struct {
	at   float64
	done chan struct{}
}

// Network is the simulator. All exported methods are safe for concurrent
// use by goroutines registered with the network.
type Network struct {
	mu      sync.Mutex
	base    time.Time
	now     float64 // virtual seconds since base
	running int     // registered goroutines not currently blocked
	nodes   map[string]*node
	flows   map[*flow]struct{}
	timers  map[*timer]struct{}
	blocked int // goroutines parked on group waiters (deadlock detection)
}

// New returns an empty network whose virtual clock starts at base.
func New(base time.Time) *Network {
	if base.IsZero() {
		base = time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC) // the paper's trial summer
	}
	return &Network{
		base:   base,
		nodes:  make(map[string]*node),
		flows:  make(map[*flow]struct{}),
		timers: make(map[*timer]struct{}),
	}
}

// AddNode registers a client node.
func (n *Network) AddNode(name string, cfg NodeConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[name]; ok {
		panic(fmt.Sprintf("netsim: node %q already exists", name))
	}
	n.nodes[name] = &node{cfg: cfg, links: make(map[string]*link)}
}

// SetLink creates or updates the link between a node and a CSP. Updating
// caps mid-simulation is allowed and affects all subsequent rate
// computations (used to model time-varying cloud performance).
func (n *Network) SetLink(nodeName, csp string, cfg LinkConfig) {
	if cfg.UpBps <= 0 || cfg.DownBps <= 0 {
		panic(fmt.Sprintf("netsim: link %s<->%s needs positive caps", nodeName, csp))
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	nd, ok := n.nodes[nodeName]
	if !ok {
		panic(fmt.Sprintf("netsim: unknown node %q", nodeName))
	}
	if l, ok := nd.links[csp]; ok {
		l.cfg = cfg
		return
	}
	nd.links[csp] = &link{cfg: cfg}
}

// Link returns the current configuration of the link between a node and a
// CSP. The chaos harness reads it to scale bandwidth up or down mid-run
// (SetLink with a modified copy) without tracking configs itself.
func (n *Network) Link(nodeName, csp string) (LinkConfig, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	nd, ok := n.nodes[nodeName]
	if !ok {
		return LinkConfig{}, false
	}
	l, ok := nd.links[csp]
	if !ok {
		return LinkConfig{}, false
	}
	return l.cfg, true
}

// VirtualNow returns the current virtual time in seconds since the base.
func (n *Network) VirtualNow() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.now
}

// Now implements vclock.Runtime.
func (n *Network) Now() time.Time {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.base.Add(time.Duration(n.now * float64(time.Second)))
}

// enter registers the calling goroutine as runnable.
func (n *Network) enter() {
	n.mu.Lock()
	n.running++
	n.mu.Unlock()
}

// exitLocked unregisters a goroutine; the last runnable one drives the
// clock forward.
func (n *Network) exit() {
	n.mu.Lock()
	n.running--
	if n.running == 0 {
		n.advanceLocked()
	}
	n.mu.Unlock()
}

// Go implements vclock.Runtime: it spawns fn as a simulated goroutine.
func (n *Network) Go(fn func()) {
	n.enter()
	go func() {
		defer n.exit()
		fn()
	}()
}

// Run executes fn as a registered goroutine and blocks (in real time)
// until it returns. It is the entry point for drivers: code inside fn may
// call Transfer, Sleep, Go, and NewGroup.
func (n *Network) Run(fn func()) {
	done := make(chan struct{})
	n.Go(func() {
		defer close(done)
		fn()
	})
	<-done
}

// await parks the calling goroutine until ch is closed. The caller must
// hold n.mu with its event already registered; await releases the lock.
func (n *Network) await(ch chan struct{}) {
	n.running--
	if n.running < 0 {
		panic("netsim: blocking call from a goroutine not registered with the network — enter via Network.Run or Network.Go")
	}
	if n.running == 0 {
		n.advanceLocked()
	}
	n.mu.Unlock()
	<-ch
}

// wakeLocked marks one goroutine runnable and releases it.
func (n *Network) wakeLocked(ch chan struct{}) {
	n.running++
	close(ch)
}

// Sleep implements vclock.Runtime: it suspends the caller for d of virtual
// time.
func (n *Network) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	n.mu.Lock()
	t := &timer{at: n.now + d.Seconds(), done: make(chan struct{})}
	n.timers[t] = struct{}{}
	n.await(t.done)
}

// RoundTrip suspends the caller for the RTT of the node's link to csp,
// modeling one control round trip (e.g. an HTTP request/response).
func (n *Network) RoundTrip(nodeName, csp string) error {
	n.mu.Lock()
	nd, ok := n.nodes[nodeName]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("netsim: unknown node %q", nodeName)
	}
	l, ok := nd.links[csp]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("netsim: no link %s<->%s", nodeName, csp)
	}
	rtt := l.cfg.RTT
	n.mu.Unlock()
	n.Sleep(rtt)
	return nil
}

// Transfer moves bytes between the node and the CSP in the given
// direction, blocking (in virtual time) until the transfer completes under
// max-min fair bandwidth sharing with all concurrent flows.
func (n *Network) Transfer(nodeName, csp string, dir Direction, bytes int64) error {
	n.mu.Lock()
	nd, ok := n.nodes[nodeName]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("netsim: unknown node %q", nodeName)
	}
	if _, ok := nd.links[csp]; !ok {
		n.mu.Unlock()
		return fmt.Errorf("netsim: no link %s<->%s", nodeName, csp)
	}
	if bytes <= 0 {
		n.mu.Unlock()
		return nil
	}
	f := &flow{node: nodeName, csp: csp, dir: dir, remaining: float64(bytes), done: make(chan struct{})}
	n.flows[f] = struct{}{}
	n.await(f.done)
	return nil
}

// NewGroup implements vclock.Runtime.
func (n *Network) NewGroup() vclock.Group {
	return &simGroup{net: n}
}

// simGroup is a WaitGroup whose Wait parks the goroutine in virtual time.
type simGroup struct {
	net     *Network
	count   int
	waiters []chan struct{}
}

func (g *simGroup) Add(delta int) {
	g.net.mu.Lock()
	defer g.net.mu.Unlock()
	g.count += delta
	if g.count < 0 {
		panic("netsim: negative group counter")
	}
	if g.count == 0 {
		for _, w := range g.waiters {
			g.net.blocked--
			g.net.wakeLocked(w)
		}
		g.waiters = nil
	}
}

func (g *simGroup) Done() { g.Add(-1) }

func (g *simGroup) Wait() {
	g.net.mu.Lock()
	if g.count == 0 {
		g.net.mu.Unlock()
		return
	}
	w := make(chan struct{})
	g.waiters = append(g.waiters, w)
	g.net.blocked++
	g.net.await(w)
}

// advanceLocked moves the virtual clock to the next event and wakes its
// owners. It loops until at least one goroutine is runnable or the network
// is quiescent. Caller holds n.mu.
func (n *Network) advanceLocked() {
	for n.running == 0 {
		if len(n.flows) == 0 && len(n.timers) == 0 {
			if n.blocked > 0 {
				panic("netsim: deadlock — goroutines wait on groups but no flows or timers are pending\n" + n.stateLocked())
			}
			return // quiescent
		}
		n.computeRatesLocked()

		next := math.Inf(1)
		for f := range n.flows {
			if f.rate <= 0 {
				panic("netsim: flow with zero rate\n" + n.stateLocked())
			}
			if t := n.now + f.remaining/f.rate; t < next {
				next = t
			}
		}
		for t := range n.timers {
			if t.at < next {
				next = t.at
			}
		}
		dt := next - n.now
		if dt < 0 {
			dt = 0
		}
		for f := range n.flows {
			f.remaining -= f.rate * dt
		}
		n.now = next

		const doneEps = 1e-6 // bytes
		for f := range n.flows {
			if f.remaining <= doneEps {
				delete(n.flows, f)
				n.wakeLocked(f.done)
			}
		}
		for t := range n.timers {
			if t.at <= n.now+1e-12 {
				delete(n.timers, t)
				n.wakeLocked(t.done)
			}
		}
	}
}

// computeRatesLocked assigns each active flow its max-min fair rate via
// progressive filling over link capacities and client aggregate caps.
func (n *Network) computeRatesLocked() {
	if len(n.flows) == 0 {
		return
	}
	type resource struct {
		cap      float64
		residual float64
		flows    []*flow
		active   int
	}
	resources := make(map[string]*resource)
	res := func(key string, cap float64) *resource {
		r, ok := resources[key]
		if !ok {
			r = &resource{cap: cap, residual: cap}
			resources[key] = r
		}
		return r
	}

	flowRes := make(map[*flow][]*resource, len(n.flows))
	for f := range n.flows {
		f.rate = 0
		l := n.nodes[f.node].links[f.csp]
		var linkCap float64
		if f.dir == Up {
			linkCap = l.cfg.UpBps
		} else {
			linkCap = l.cfg.DownBps
		}
		rs := []*resource{res("link/"+f.node+"/"+f.csp+"/"+f.dir.String(), linkCap)}
		nodeCap := n.nodes[f.node].cfg.UpBps
		if f.dir == Down {
			nodeCap = n.nodes[f.node].cfg.DownBps
		}
		if nodeCap > 0 {
			rs = append(rs, res("node/"+f.node+"/"+f.dir.String(), nodeCap))
		}
		for _, r := range rs {
			r.flows = append(r.flows, f)
			r.active++
		}
		flowRes[f] = rs
	}

	frozen := make(map[*flow]bool, len(n.flows))
	remaining := len(n.flows)
	for remaining > 0 {
		// Smallest per-flow headroom across resources with active flows.
		inc := math.Inf(1)
		for _, r := range resources {
			if r.active > 0 {
				if h := r.residual / float64(r.active); h < inc {
					inc = h
				}
			}
		}
		if math.IsInf(inc, 1) {
			panic("netsim: unconstrained flows\n" + n.stateLocked())
		}
		if inc > 0 {
			for f := range n.flows {
				if !frozen[f] {
					f.rate += inc
				}
			}
			for _, r := range resources {
				r.residual -= inc * float64(r.active)
			}
		}
		// Freeze flows on saturated resources.
		progressed := false
		for _, r := range resources {
			if r.active > 0 && r.residual <= 1e-9*r.cap {
				for _, f := range r.flows {
					if frozen[f] {
						continue
					}
					frozen[f] = true
					remaining--
					progressed = true
					for _, fr := range flowRes[f] {
						fr.active--
					}
				}
			}
		}
		if !progressed {
			panic("netsim: progressive filling made no progress\n" + n.stateLocked())
		}
	}
}

// stateLocked renders diagnostics for panics.
func (n *Network) stateLocked() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%.3fs running=%d blocked=%d flows=%d timers=%d\n",
		n.now, n.running, n.blocked, len(n.flows), len(n.timers))
	var lines []string
	for f := range n.flows {
		lines = append(lines, fmt.Sprintf("  flow %s<->%s %s remaining=%.0fB rate=%.0fB/s", f.node, f.csp, f.dir, f.remaining, f.rate))
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l + "\n")
	}
	return b.String()
}

var _ vclock.Runtime = (*Network)(nil)
