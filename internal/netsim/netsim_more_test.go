package netsim

import (
	"testing"
	"time"
)

func TestTimerAndFlowInterleave(t *testing.T) {
	// A sleeper and a transfer run concurrently; the clock must honor both
	// event sources in order.
	n := newTestNet(NodeConfig{})
	n.SetLink("client", "csp", LinkConfig{UpBps: 10 * MB, DownBps: 10 * MB})
	var tSleep, tFlow float64
	n.Run(func() {
		g := n.NewGroup()
		g.Add(2)
		n.Go(func() { defer g.Done(); n.Sleep(3 * time.Second); tSleep = n.VirtualNow() })
		n.Go(func() { defer g.Done(); _ = n.Transfer("client", "csp", Up, 50*MB); tFlow = n.VirtualNow() })
		g.Wait()
	})
	approx(t, tSleep, 3, 1e-9, "sleep completion")
	approx(t, tFlow, 5, 1e-6, "flow completion")
	approx(t, n.VirtualNow(), 5, 1e-6, "final clock")
}

func TestRateChangeMidFlow(t *testing.T) {
	// A long transfer shares its link cap change: a watcher halves the cap
	// after 2 virtual seconds. First 2 s at 10 MB/s (20 MB done), the
	// remaining 30 MB at 5 MB/s -> 6 s more, total 8 s.
	n := newTestNet(NodeConfig{})
	n.SetLink("client", "csp", LinkConfig{UpBps: 10 * MB, DownBps: 10 * MB})
	n.Run(func() {
		g := n.NewGroup()
		g.Add(2)
		n.Go(func() { defer g.Done(); _ = n.Transfer("client", "csp", Up, 50*MB) })
		n.Go(func() {
			defer g.Done()
			n.Sleep(2 * time.Second)
			n.SetLink("client", "csp", LinkConfig{UpBps: 5 * MB, DownBps: 5 * MB})
		})
		g.Wait()
	})
	approx(t, n.VirtualNow(), 8, 1e-6, "transfer spanning a cap change")
}

func TestNowIsMonotonic(t *testing.T) {
	n := newTestNet(NodeConfig{})
	n.SetLink("client", "csp", LinkConfig{UpBps: MB, DownBps: MB})
	var stamps []time.Time
	n.Run(func() {
		for i := 0; i < 5; i++ {
			stamps = append(stamps, n.Now())
			_ = n.Transfer("client", "csp", Up, MB/4)
		}
		stamps = append(stamps, n.Now())
	})
	for i := 1; i < len(stamps); i++ {
		if !stamps[i].After(stamps[i-1]) {
			t.Fatalf("Now not strictly increasing at %d: %v vs %v", i, stamps[i-1], stamps[i])
		}
	}
}

func TestZeroSleepAndImmediateGroup(t *testing.T) {
	n := newTestNet(NodeConfig{})
	n.Run(func() {
		n.Sleep(0)
		g := n.NewGroup()
		g.Add(1)
		g.Done()
		g.Wait()
	})
	approx(t, n.VirtualNow(), 0, 1e-12, "no time passes")
}

func TestManySleepersWakeInOrder(t *testing.T) {
	n := newTestNet(NodeConfig{})
	var order []int
	n.Run(func() {
		g := n.NewGroup()
		for i := 5; i >= 1; i-- {
			i := i
			g.Add(1)
			n.Go(func() {
				defer g.Done()
				n.Sleep(time.Duration(i) * time.Second)
				order = append(order, i) // woken alone: no race
			})
		}
		g.Wait()
	})
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("wake order = %v", order)
		}
	}
	approx(t, n.VirtualNow(), 5, 1e-9, "last sleeper")
}

func TestUnregisteredBlockPanics(t *testing.T) {
	n := newTestNet(NodeConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("blocking outside Run/Go did not panic")
		}
	}()
	n.Sleep(time.Second) // calling goroutine never registered
}

func TestRunReturnsAfterBackgroundWork(t *testing.T) {
	// Run must not return until fn and, transitively, everything fn waits
	// on is done; background goroutines fn does NOT wait for may still be
	// running — they keep the network alive until they finish.
	n := newTestNet(NodeConfig{})
	n.SetLink("client", "csp", LinkConfig{UpBps: MB, DownBps: MB})
	done := make(chan struct{})
	n.Run(func() {
		n.Go(func() {
			_ = n.Transfer("client", "csp", Up, MB)
			close(done)
		})
	})
	<-done // the detached goroutine completed under virtual time
	approx(t, n.VirtualNow(), 1, 1e-6, "detached transfer")
}
