package netsim

import (
	"math"
	"testing"
	"time"
)

const MB = 1 << 20

func newTestNet(nodeCfg NodeConfig) *Network {
	n := New(time.Time{})
	n.AddNode("client", nodeCfg)
	return n
}

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %.4f, want %.4f (±%.4f)", what, got, want, tol)
	}
}

func TestSingleTransferTime(t *testing.T) {
	n := newTestNet(NodeConfig{})
	n.SetLink("client", "csp", LinkConfig{UpBps: 10 * MB, DownBps: 20 * MB})
	n.Run(func() {
		if err := n.Transfer("client", "csp", Up, 100*MB); err != nil {
			t.Error(err)
		}
	})
	approx(t, n.VirtualNow(), 10, 1e-6, "upload of 100MB at 10MB/s")
}

func TestDownUsesDownCap(t *testing.T) {
	n := newTestNet(NodeConfig{})
	n.SetLink("client", "csp", LinkConfig{UpBps: 10 * MB, DownBps: 20 * MB})
	n.Run(func() {
		_ = n.Transfer("client", "csp", Down, 100*MB)
	})
	approx(t, n.VirtualNow(), 5, 1e-6, "download of 100MB at 20MB/s")
}

func TestParallelFlowsShareLink(t *testing.T) {
	// Two uploads on one 10 MB/s link: each gets 5 MB/s, both finish at 20s.
	n := newTestNet(NodeConfig{})
	n.SetLink("client", "csp", LinkConfig{UpBps: 10 * MB, DownBps: 10 * MB})
	n.Run(func() {
		g := n.NewGroup()
		for i := 0; i < 2; i++ {
			g.Add(1)
			n.Go(func() {
				defer g.Done()
				_ = n.Transfer("client", "csp", Up, 100*MB)
			})
		}
		g.Wait()
	})
	approx(t, n.VirtualNow(), 20, 1e-6, "two parallel 100MB uploads on 10MB/s")
}

func TestIndependentLinksDoNotInterfere(t *testing.T) {
	n := newTestNet(NodeConfig{})
	n.SetLink("client", "a", LinkConfig{UpBps: 10 * MB, DownBps: 10 * MB})
	n.SetLink("client", "b", LinkConfig{UpBps: 5 * MB, DownBps: 5 * MB})
	var ta, tb float64
	n.Run(func() {
		g := n.NewGroup()
		g.Add(2)
		n.Go(func() { defer g.Done(); _ = n.Transfer("client", "a", Up, 100*MB); ta = n.VirtualNow() })
		n.Go(func() { defer g.Done(); _ = n.Transfer("client", "b", Up, 100*MB); tb = n.VirtualNow() })
		g.Wait()
	})
	approx(t, ta, 10, 1e-6, "fast link completion")
	approx(t, tb, 20, 1e-6, "slow link completion")
}

func TestClientAggregateCapBindsAcrossLinks(t *testing.T) {
	// Two links of 10 MB/s each, but the client uplink is capped at 10:
	// each flow gets 5 MB/s.
	n := newTestNet(NodeConfig{UpBps: 10 * MB})
	n.SetLink("client", "a", LinkConfig{UpBps: 10 * MB, DownBps: 10 * MB})
	n.SetLink("client", "b", LinkConfig{UpBps: 10 * MB, DownBps: 10 * MB})
	n.Run(func() {
		g := n.NewGroup()
		g.Add(2)
		n.Go(func() { defer g.Done(); _ = n.Transfer("client", "a", Up, 50*MB) })
		n.Go(func() { defer g.Done(); _ = n.Transfer("client", "b", Up, 50*MB) })
		g.Wait()
	})
	approx(t, n.VirtualNow(), 10, 1e-6, "client-capped parallel uploads")
}

func TestMaxMinFairnessSpilloverToFastFlow(t *testing.T) {
	// Client cap 12; link a caps at 2 (slow cloud), link b at 20. Max-min:
	// flow a gets 2, flow b gets 10. a: 20MB/2 = 10s; b: 100MB/10 = 10s.
	n := newTestNet(NodeConfig{UpBps: 12 * MB})
	n.SetLink("client", "a", LinkConfig{UpBps: 2 * MB, DownBps: 2 * MB})
	n.SetLink("client", "b", LinkConfig{UpBps: 20 * MB, DownBps: 20 * MB})
	var ta, tb float64
	n.Run(func() {
		g := n.NewGroup()
		g.Add(2)
		n.Go(func() { defer g.Done(); _ = n.Transfer("client", "a", Up, 20*MB); ta = n.VirtualNow() })
		n.Go(func() { defer g.Done(); _ = n.Transfer("client", "b", Up, 100*MB); tb = n.VirtualNow() })
		g.Wait()
	})
	approx(t, ta, 10, 1e-6, "slow-link flow at max-min rate 2MB/s")
	approx(t, tb, 10, 1e-6, "fast-link flow at max-min rate 10MB/s")
}

func TestRateReallocationAfterCompletion(t *testing.T) {
	// Two flows share a 10 MB/s link; one is 10 MB, the other 100 MB.
	// Phase 1: both at 5 MB/s until t=2 (small one done).
	// Phase 2: big one at 10 MB/s with 90 MB left -> 9s more. Total 11s.
	n := newTestNet(NodeConfig{})
	n.SetLink("client", "csp", LinkConfig{UpBps: 10 * MB, DownBps: 10 * MB})
	var tSmall, tBig float64
	n.Run(func() {
		g := n.NewGroup()
		g.Add(2)
		n.Go(func() { defer g.Done(); _ = n.Transfer("client", "csp", Up, 10*MB); tSmall = n.VirtualNow() })
		n.Go(func() { defer g.Done(); _ = n.Transfer("client", "csp", Up, 100*MB); tBig = n.VirtualNow() })
		g.Wait()
	})
	approx(t, tSmall, 2, 1e-6, "small flow completion")
	approx(t, tBig, 11, 1e-6, "big flow completion after reallocation")
}

func TestSleepAndNow(t *testing.T) {
	n := newTestNet(NodeConfig{})
	base := n.Now()
	n.Run(func() {
		n.Sleep(1500 * time.Millisecond)
		n.Sleep(-5) // no-op
	})
	approx(t, n.VirtualNow(), 1.5, 1e-9, "virtual time after sleep")
	if got := n.Now().Sub(base); got != 1500*time.Millisecond {
		t.Fatalf("Now advanced by %v, want 1.5s", got)
	}
}

func TestRoundTrip(t *testing.T) {
	n := newTestNet(NodeConfig{})
	n.SetLink("client", "csp", LinkConfig{RTT: 137 * time.Millisecond, UpBps: MB, DownBps: MB})
	n.Run(func() {
		if err := n.RoundTrip("client", "csp"); err != nil {
			t.Error(err)
		}
	})
	approx(t, n.VirtualNow(), 0.137, 1e-9, "round trip latency")
	if err := n.RoundTrip("client", "nope"); err == nil {
		t.Fatal("RoundTrip to unknown CSP did not error")
	}
	if err := n.RoundTrip("ghost", "csp"); err == nil {
		t.Fatal("RoundTrip from unknown node did not error")
	}
}

func TestTransferErrors(t *testing.T) {
	n := newTestNet(NodeConfig{})
	n.SetLink("client", "csp", LinkConfig{UpBps: MB, DownBps: MB})
	n.Run(func() {
		if err := n.Transfer("ghost", "csp", Up, 10); err == nil {
			t.Error("unknown node accepted")
		}
		if err := n.Transfer("client", "ghost", Up, 10); err == nil {
			t.Error("unknown CSP accepted")
		}
		if err := n.Transfer("client", "csp", Up, 0); err != nil {
			t.Errorf("zero-byte transfer: %v", err)
		}
	})
	approx(t, n.VirtualNow(), 0, 1e-12, "errors and empty transfers take no time")
}

func TestSequentialTransfersAccumulate(t *testing.T) {
	n := newTestNet(NodeConfig{})
	n.SetLink("client", "csp", LinkConfig{UpBps: 10 * MB, DownBps: 10 * MB})
	n.Run(func() {
		_ = n.Transfer("client", "csp", Up, 50*MB)   // 5s
		_ = n.Transfer("client", "csp", Down, 20*MB) // 2s
	})
	approx(t, n.VirtualNow(), 7, 1e-6, "sequential up+down")
}

func TestMidSimulationLinkUpdate(t *testing.T) {
	// Halve the link speed between two transfers (diurnal variation model).
	n := newTestNet(NodeConfig{})
	n.SetLink("client", "csp", LinkConfig{UpBps: 10 * MB, DownBps: 10 * MB})
	n.Run(func() {
		_ = n.Transfer("client", "csp", Up, 10*MB) // 1s
		n.SetLink("client", "csp", LinkConfig{UpBps: 5 * MB, DownBps: 5 * MB})
		_ = n.Transfer("client", "csp", Up, 10*MB) // 2s
	})
	approx(t, n.VirtualNow(), 3, 1e-6, "transfers across a cap change")
}

func TestUpAndDownAreSeparateResources(t *testing.T) {
	// A full-duplex link: simultaneous 10MB up and 10MB down at 10MB/s each
	// finish in 1s, not 2.
	n := newTestNet(NodeConfig{})
	n.SetLink("client", "csp", LinkConfig{UpBps: 10 * MB, DownBps: 10 * MB})
	n.Run(func() {
		g := n.NewGroup()
		g.Add(2)
		n.Go(func() { defer g.Done(); _ = n.Transfer("client", "csp", Up, 10*MB) })
		n.Go(func() { defer g.Done(); _ = n.Transfer("client", "csp", Down, 10*MB) })
		g.Wait()
	})
	approx(t, n.VirtualNow(), 1, 1e-6, "full duplex transfers")
}

func TestManyGoroutinesDeterministic(t *testing.T) {
	run := func() float64 {
		n := New(time.Time{})
		n.AddNode("client", NodeConfig{UpBps: 13 * MB})
		for i := 0; i < 7; i++ {
			name := string(rune('a' + i))
			n.SetLink("client", name, LinkConfig{UpBps: float64(1+i) * MB, DownBps: MB})
		}
		n.Run(func() {
			g := n.NewGroup()
			for i := 0; i < 7; i++ {
				name := string(rune('a' + i))
				size := int64((i + 1) * 7 * MB)
				g.Add(1)
				n.Go(func() { defer g.Done(); _ = n.Transfer("client", name, Up, size) })
			}
			g.Wait()
		})
		return n.VirtualNow()
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d gave %.9f, first gave %.9f — not deterministic", i, got, first)
		}
	}
}

func TestGroupReuseAndZeroWait(t *testing.T) {
	n := newTestNet(NodeConfig{})
	n.Run(func() {
		g := n.NewGroup()
		g.Wait() // count 0: returns immediately
		g.Add(1)
		n.Go(func() { n.Sleep(time.Second); g.Done() })
		g.Wait()
		g.Add(1)
		n.Go(func() { n.Sleep(time.Second); g.Done() })
		g.Wait()
	})
	approx(t, n.VirtualNow(), 2, 1e-9, "two sequential group waits")
}

func TestNestedGoFanOut(t *testing.T) {
	// Goroutines spawning goroutines, netsim must track all of them.
	n := newTestNet(NodeConfig{})
	n.SetLink("client", "csp", LinkConfig{UpBps: 10 * MB, DownBps: 10 * MB})
	n.Run(func() {
		outer := n.NewGroup()
		for i := 0; i < 3; i++ {
			outer.Add(1)
			n.Go(func() {
				defer outer.Done()
				inner := n.NewGroup()
				for j := 0; j < 2; j++ {
					inner.Add(1)
					n.Go(func() {
						defer inner.Done()
						_ = n.Transfer("client", "csp", Up, 10*MB)
					})
				}
				inner.Wait()
			})
		}
		outer.Wait()
	})
	// 6 concurrent flows of 10MB on a 10MB/s link: 6s.
	approx(t, n.VirtualNow(), 6, 1e-6, "nested fan-out")
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddNode did not panic")
		}
	}()
	n := New(time.Time{})
	n.AddNode("c", NodeConfig{})
	n.AddNode("c", NodeConfig{})
}

func TestBadLinkCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-cap SetLink did not panic")
		}
	}()
	n := New(time.Time{})
	n.AddNode("c", NodeConfig{})
	n.SetLink("c", "x", LinkConfig{UpBps: 0, DownBps: 1})
}

func TestTwoClientNodes(t *testing.T) {
	// Two clients with separate aggregate caps talking to one CSP: the CSP
	// side is modeled per client-link, so they do not interfere.
	n := New(time.Time{})
	n.AddNode("alice", NodeConfig{UpBps: 10 * MB})
	n.AddNode("bob", NodeConfig{UpBps: 5 * MB})
	n.SetLink("alice", "csp", LinkConfig{UpBps: 20 * MB, DownBps: 20 * MB})
	n.SetLink("bob", "csp", LinkConfig{UpBps: 20 * MB, DownBps: 20 * MB})
	var ta, tb float64
	n.Run(func() {
		g := n.NewGroup()
		g.Add(2)
		n.Go(func() { defer g.Done(); _ = n.Transfer("alice", "csp", Up, 50*MB); ta = n.VirtualNow() })
		n.Go(func() { defer g.Done(); _ = n.Transfer("bob", "csp", Up, 50*MB); tb = n.VirtualNow() })
		g.Wait()
	})
	approx(t, ta, 5, 1e-6, "alice at 10MB/s")
	approx(t, tb, 10, 1e-6, "bob at 5MB/s")
}
