package topology

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"sort"
)

// PlatformDepth is the depth in synthetic routes at which platform backbone
// hops appear. Cutting the tree at this depth groups CSPs by platform.
const PlatformDepth = 3

// SyntheticProber generates deterministic traceroute-like paths using a
// platform map as ground truth:
//
//	client -> isp-gw -> transit-<region> -> platform-<P> -> edge-<csp> (-> csp)
//
// CSPs on the same platform share the platform hop (the paper's observation
// that, e.g., five CSPs resolve into Amazon datacenters); independent CSPs
// get a platform hop of their own. The Noise parameter inserts extra
// per-CSP transit hops *after* the platform hop, emulating internal CSP
// connections that traceroute exposes (footnote 5) without disturbing the
// shared prefix the clustering relies on.
type SyntheticProber struct {
	// PlatformOf maps CSP name -> platform name. CSPs absent from the map
	// are modeled as running their own infrastructure.
	PlatformOf map[string]string
	// Region selects the transit hop label; clients in different regions
	// produce different trees (default "us").
	Region string
	// Noise adds n extra hashed hops below the platform hop when > 0.
	Noise int
}

// Probe implements Prober.
func (s *SyntheticProber) Probe(csps []string) ([]Route, error) {
	region := s.Region
	if region == "" {
		region = "us"
	}
	sorted := append([]string(nil), csps...)
	sort.Strings(sorted)
	routes := make([]Route, 0, len(sorted))
	for _, c := range sorted {
		platform, shared := s.PlatformOf[c]
		if !shared {
			platform = "self-" + c
		}
		hops := []string{
			ClientNode,
			"isp-gw-" + region,
			"transit-" + region,
			"platform-" + platform,
		}
		for i := 0; i < s.Noise; i++ {
			hops = append(hops, fmt.Sprintf("hop-%s-%d", shortHash(c), i))
		}
		hops = append(hops, "edge-"+c, c)
		routes = append(routes, Route{CSP: c, Hops: hops})
	}
	return routes, nil
}

func shortHash(s string) string {
	sum := sha1.Sum([]byte(s))
	return fmt.Sprintf("%x", binary.BigEndian.Uint32(sum[:4]))
}

// InferClusters runs the full §4.1 pipeline: probe, build the MST, cut at
// the platform depth, and return both the cluster map and the clusters.
func InferClusters(p Prober, csps []string) (map[string]string, [][]string, error) {
	routes, err := p.Probe(csps)
	if err != nil {
		return nil, nil, fmt.Errorf("topology: probe: %w", err)
	}
	tree, err := BuildTree(routes)
	if err != nil {
		return nil, nil, err
	}
	return tree.ClusterMap(PlatformDepth), tree.ClustersAt(PlatformDepth), nil
}
