// Package topology infers which CSPs share physical cloud platforms
// (paper §4.1, Figure 3).
//
// CYRUS probes the route from the client to each CSP (the paper uses
// traceroute), builds a graph from the observed paths, computes its minimal
// spanning tree rooted at the client, and hierarchically clusters the CSPs
// by horizontally cutting the tree at a level: CSPs that remain in the same
// subtree below the cut share infrastructure and must not hold two shares
// of one chunk.
//
// Real traceroute is unavailable offline, so Probe results are produced by
// a deterministic synthetic route model (SyntheticProber) whose ground
// truth is the platform column of the provider registry; the inference
// pipeline itself is implemented exactly as published and works on any
// Route values.
package topology

import (
	"errors"
	"fmt"
	"sort"
)

// ClientNode is the label of the probing client, the root of every route.
const ClientNode = "client"

// Route is one observed path from the client to a CSP, as a sequence of
// hop labels (router identities). The first hop is the client itself and
// the last hop is the CSP.
type Route struct {
	CSP  string
	Hops []string
}

// Validate checks route shape.
func (r Route) Validate() error {
	if r.CSP == "" {
		return errors.New("topology: route with empty CSP")
	}
	if len(r.Hops) < 2 {
		return fmt.Errorf("topology: route to %q has %d hops, need >= 2", r.CSP, len(r.Hops))
	}
	if r.Hops[0] != ClientNode {
		return fmt.Errorf("topology: route to %q does not start at the client", r.CSP)
	}
	if r.Hops[len(r.Hops)-1] != r.CSP {
		return fmt.Errorf("topology: route to %q ends at %q", r.CSP, r.Hops[len(r.Hops)-1])
	}
	return nil
}

// Prober produces routes from the client to each named CSP.
type Prober interface {
	Probe(csps []string) ([]Route, error)
}

// Tree is the minimal spanning tree of the route graph, rooted at the
// client.
type Tree struct {
	parent map[string]string // node -> parent (root maps to "")
	depth  map[string]int
	csps   []string
}

// edge in the route graph; weight is hop distance from the client along
// the first route that used it.
type edge struct {
	a, b   string
	weight int
}

// BuildTree constructs the route graph from the given routes and extracts
// its minimal spanning tree with Kruskal's algorithm, keeping the tree
// rooted at the client. Edge weights are the hop depth, so the MST
// reproduces the shared prefixes of the routes: two CSPs whose routes share
// a deep hop (a platform backbone router) end up in the same deep subtree.
func BuildTree(routes []Route) (*Tree, error) {
	if len(routes) == 0 {
		return nil, errors.New("topology: no routes")
	}
	var edges []edge
	seenEdge := map[[2]string]bool{}
	nodes := map[string]bool{ClientNode: true}
	var csps []string
	for _, r := range routes {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		csps = append(csps, r.CSP)
		for i := 1; i < len(r.Hops); i++ {
			a, b := r.Hops[i-1], r.Hops[i]
			nodes[a], nodes[b] = true, true
			key := [2]string{a, b}
			if a > b {
				key = [2]string{b, a}
			}
			if !seenEdge[key] {
				seenEdge[key] = true
				edges = append(edges, edge{a, b, i})
			}
		}
	}
	// Kruskal: sort edges by weight (then lexicographically for
	// determinism) and union.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].weight != edges[j].weight {
			return edges[i].weight < edges[j].weight
		}
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	uf := newUnionFind()
	adj := map[string][]string{}
	for _, e := range edges {
		if uf.union(e.a, e.b) {
			adj[e.a] = append(adj[e.a], e.b)
			adj[e.b] = append(adj[e.b], e.a)
		}
	}

	// Root the tree at the client with a BFS.
	t := &Tree{parent: map[string]string{ClientNode: ""}, depth: map[string]int{ClientNode: 0}, csps: csps}
	queue := []string{ClientNode}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		children := append([]string(nil), adj[cur]...)
		sort.Strings(children)
		for _, nb := range children {
			if _, ok := t.parent[nb]; ok {
				continue
			}
			t.parent[nb] = cur
			t.depth[nb] = t.depth[cur] + 1
			queue = append(queue, nb)
		}
	}
	for _, c := range csps {
		if _, ok := t.parent[c]; !ok {
			return nil, fmt.Errorf("topology: CSP %q not reachable from client in MST", c)
		}
	}
	sort.Strings(t.csps)
	return t, nil
}

// CSPs returns the leaf CSPs, sorted.
func (t *Tree) CSPs() []string { return append([]string(nil), t.csps...) }

// Depth returns the depth of a node (client = 0), or -1 if unknown.
func (t *Tree) Depth(node string) int {
	d, ok := t.depth[node]
	if !ok {
		return -1
	}
	return d
}

// AncestorAt returns the ancestor of node at the given depth. If the node
// is shallower than depth, the node itself is returned.
func (t *Tree) AncestorAt(node string, depth int) string {
	cur := node
	for t.depth[cur] > depth {
		cur = t.parent[cur]
	}
	return cur
}

// ClustersAt cuts the tree horizontally at the given depth and groups CSPs
// by the subtree they fall in (paper: "we hierarchically cluster the CSPs
// by horizontally cutting the tree at a given level"). Each cluster is
// sorted; clusters are sorted by their first member.
func (t *Tree) ClustersAt(depth int) [][]string {
	if depth < 1 {
		depth = 1
	}
	groups := map[string][]string{}
	for _, c := range t.csps {
		anc := t.AncestorAt(c, depth)
		groups[anc] = append(groups[anc], c)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		sort.Strings(groups[k])
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return groups[keys[i]][0] < groups[keys[j]][0] })
	out := make([][]string, 0, len(groups))
	for _, k := range keys {
		out = append(out, groups[k])
	}
	return out
}

// ClusterMap returns csp -> cluster-id for the cut at the given depth, in
// the format hashring.SelectClustered expects.
func (t *Tree) ClusterMap(depth int) map[string]string {
	m := make(map[string]string, len(t.csps))
	for _, c := range t.csps {
		m[c] = t.AncestorAt(c, depth)
	}
	return m
}

// union-find for Kruskal.
type unionFind struct{ parent map[string]string }

func newUnionFind() *unionFind { return &unionFind{parent: map[string]string{}} }

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

// union merges the sets of a and b, reporting whether they were distinct.
func (u *unionFind) union(a, b string) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	u.parent[ra] = rb
	return true
}
