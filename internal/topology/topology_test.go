package topology

import (
	"reflect"
	"strings"
	"testing"
)

func TestRouteValidate(t *testing.T) {
	good := Route{CSP: "box", Hops: []string{ClientNode, "h1", "box"}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Route{
		{CSP: "", Hops: []string{ClientNode, "x"}},
		{CSP: "box", Hops: []string{"box"}},
		{CSP: "box", Hops: []string{"h0", "box"}},
		{CSP: "box", Hops: []string{ClientNode, "h1", "notbox"}},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad route %d validated", i)
		}
	}
}

func TestBuildTreeSharedPlatform(t *testing.T) {
	routes := []Route{
		{CSP: "s3", Hops: []string{ClientNode, "isp", "transit", "amazon", "s3"}},
		{CSP: "dropbox", Hops: []string{ClientNode, "isp", "transit", "amazon", "dropbox"}},
		{CSP: "gdrive", Hops: []string{ClientNode, "isp", "transit", "google", "gdrive"}},
	}
	tree, err := BuildTree(routes)
	if err != nil {
		t.Fatal(err)
	}
	clusters := tree.ClustersAt(3)
	want := [][]string{{"dropbox", "s3"}, {"gdrive"}}
	if !reflect.DeepEqual(clusters, want) {
		t.Fatalf("ClustersAt(3) = %v, want %v", clusters, want)
	}
	// Cutting at depth 1 merges everything (same ISP).
	all := tree.ClustersAt(1)
	if len(all) != 1 || len(all[0]) != 3 {
		t.Fatalf("ClustersAt(1) = %v, want one cluster of 3", all)
	}
}

func TestBuildTreeErrors(t *testing.T) {
	if _, err := BuildTree(nil); err == nil {
		t.Fatal("empty routes accepted")
	}
	if _, err := BuildTree([]Route{{CSP: "x", Hops: []string{"y", "x"}}}); err == nil {
		t.Fatal("invalid route accepted")
	}
}

func TestTreeDepthAndAncestor(t *testing.T) {
	routes := []Route{
		{CSP: "a", Hops: []string{ClientNode, "h1", "h2", "a"}},
	}
	tree, err := BuildTree(routes)
	if err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(ClientNode); d != 0 {
		t.Fatalf("client depth = %d", d)
	}
	if d := tree.Depth("a"); d != 3 {
		t.Fatalf("leaf depth = %d", d)
	}
	if d := tree.Depth("missing"); d != -1 {
		t.Fatalf("missing depth = %d", d)
	}
	if got := tree.AncestorAt("a", 1); got != "h1" {
		t.Fatalf("AncestorAt(a, 1) = %q", got)
	}
	if got := tree.AncestorAt("h1", 3); got != "h1" {
		t.Fatalf("AncestorAt(shallow node) = %q", got)
	}
}

// paperPlatforms mirrors Table 2's asterisks: five CSPs resolve into Amazon
// infrastructure.
var paperPlatforms = map[string]string{
	"amazon-s3":     "amazon",
	"digitalbucket": "amazon",
	"bitcasa":       "amazon",
	"cloudapp":      "amazon",
	"safecreative":  "amazon",
}

func paperCSPs() []string {
	return []string{
		"amazon-s3", "box", "dropbox", "onedrive", "google-drive",
		"sugarsync", "cloudmine", "rackspace", "copy", "sharefile",
		"4shared", "digitalbucket", "bitcasa", "egnyte", "mediafire",
		"hp-cloud", "cloudapp", "safecreative", "filesanywhere", "centurylink",
	}
}

func TestInferClustersRecoversAmazonGroup(t *testing.T) {
	prober := &SyntheticProber{PlatformOf: paperPlatforms}
	clusterOf, clusters, err := InferClusters(prober, paperCSPs())
	if err != nil {
		t.Fatal(err)
	}
	// The five Amazon-hosted CSPs must share one cluster id.
	amazonID := clusterOf["amazon-s3"]
	for csp := range paperPlatforms {
		if clusterOf[csp] != amazonID {
			t.Errorf("%s clustered as %q, want %q", csp, clusterOf[csp], amazonID)
		}
	}
	// Everyone else must be alone.
	for _, csp := range paperCSPs() {
		if _, hosted := paperPlatforms[csp]; hosted {
			continue
		}
		if clusterOf[csp] == amazonID {
			t.Errorf("%s wrongly joined the amazon cluster", csp)
		}
	}
	// 20 CSPs, 5 shared -> 16 clusters.
	if len(clusters) != 16 {
		t.Fatalf("got %d clusters, want 16", len(clusters))
	}
}

func TestSyntheticProberNoiseKeepsClusters(t *testing.T) {
	prober := &SyntheticProber{PlatformOf: paperPlatforms, Noise: 2}
	clusterOf, _, err := InferClusters(prober, paperCSPs())
	if err != nil {
		t.Fatal(err)
	}
	if clusterOf["bitcasa"] != clusterOf["cloudapp"] {
		t.Fatal("noise hops broke platform clustering")
	}
	if clusterOf["box"] == clusterOf["bitcasa"] {
		t.Fatal("noise hops merged unrelated CSPs")
	}
}

func TestSyntheticProberDeterministicAndSorted(t *testing.T) {
	prober := &SyntheticProber{PlatformOf: paperPlatforms}
	a, err := prober.Probe([]string{"zeta", "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := prober.Probe([]string{"alpha", "zeta"})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("probe output depends on input order")
	}
	if a[0].CSP != "alpha" {
		t.Fatalf("routes not sorted: %v", a[0].CSP)
	}
}

func TestSyntheticProberRegions(t *testing.T) {
	us := &SyntheticProber{Region: "us"}
	kr := &SyntheticProber{Region: "kr"}
	ru, _ := us.Probe([]string{"box"})
	rk, _ := kr.Probe([]string{"box"})
	if reflect.DeepEqual(ru[0].Hops, rk[0].Hops) {
		t.Fatal("regions produce identical routes")
	}
	for _, h := range ru[0].Hops {
		if strings.Contains(h, "kr") {
			t.Fatalf("us route contains kr hop %q", h)
		}
	}
}

func TestClusterMapMatchesClusters(t *testing.T) {
	prober := &SyntheticProber{PlatformOf: paperPlatforms}
	routes, err := prober.Probe(paperCSPs())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildTree(routes)
	if err != nil {
		t.Fatal(err)
	}
	cm := tree.ClusterMap(PlatformDepth)
	for _, cluster := range tree.ClustersAt(PlatformDepth) {
		for _, csp := range cluster {
			if cm[csp] != cm[cluster[0]] {
				t.Fatalf("ClusterMap disagrees with ClustersAt for %s", csp)
			}
		}
	}
}
