package harness

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/chunker"
	"repro/internal/cloudsim"
	"repro/internal/core"
	"repro/internal/csp"
	"repro/internal/erasure"
	"repro/internal/metadata"
	"repro/internal/obs"
)

// The multi-client overlap harness: N *distinct users* (different keys,
// one shared deployment secret) concurrently upload datasets with a
// scripted byte-overlap ratio into one set of simulated clouds. The
// oracles then audit the convergent-dedup contract against raw provider
// state:
//
//   - convergence of content addresses: every expected CAS share object
//     exists exactly once with byte-exact content, and nothing else does
//   - dedup effectiveness: raw CAS bytes equal the *union* footprint (one
//     copy per unique chunk), and at 90% overlap the two-user footprint
//     stays within 15% of a single user's (the acceptance bound)
//   - refcount ground truth: every CAS object's provider-side token set
//     is exactly the set of users whose datasets reference its chunk
//   - placement and t-privacy: shared shares never double up on one
//     provider, and no provider holds enough shares to reconstruct
//   - per-user durability: under every provider kill-subset of size n−t,
//     a fresh device of each user (key + accounts only) re-reads every
//     acknowledged write byte-for-byte
//   - per-user metadata replication: every acknowledged version stays
//     recoverable from >= MetaT intact metadata shares

// OverlapOptions configures one multi-user overlap run.
type OverlapOptions struct {
	Seed      int64
	Users     int     // distinct users (default 2)
	Providers int     // simulated CSPs (default 4)
	T         int     // privacy level (default 2)
	N         int     // shares per chunk (default 3)
	MetaT     int     // metadata privacy level (default 2)
	Overlap   float64 // fraction of each user's files shared by all users
	Files     int     // files per user (default 10)
	FileSize  int     // bytes per file (default 8 KiB); fixed size makes byte overlap == file overlap
}

func (o OverlapOptions) withDefaults() OverlapOptions {
	if o.Users == 0 {
		o.Users = 2
	}
	if o.Providers == 0 {
		o.Providers = 4
	}
	if o.T == 0 {
		o.T = 2
	}
	if o.N == 0 {
		o.N = 3
	}
	if o.MetaT == 0 {
		o.MetaT = 2
	}
	if o.Files == 0 {
		o.Files = 10
	}
	if o.FileSize == 0 {
		o.FileSize = 8 << 10
	}
	return o
}

// OverlapReport is what one overlap run measured.
type OverlapReport struct {
	UniqueChunks  int
	TotalChunks   int   // sum of per-user chunk counts
	CASBytes      int64 // measured bytes stored under content addresses
	ExpectedBytes int64 // union footprint: one copy per unique chunk
	SingleUser    int64 // expected footprint of user 0 uploading alone
	LogicalBytes  int64 // sum of per-user footprints (no dedup baseline)
	DedupHits     int64
	DedupMisses   int64
	DedupSaved    int64
	Violations    []Violation
}

// DedupRatio is the fraction of logical share bytes dedup avoided storing.
func (r *OverlapReport) DedupRatio() float64 {
	if r.LogicalBytes == 0 {
		return 0
	}
	return 1 - float64(r.CASBytes)/float64(r.LogicalBytes)
}

// overlapFile is one file of one user's dataset.
type overlapFile struct {
	name string
	data []byte
}

// overlapWorld owns the simulated deployment of one overlap run.
type overlapWorld struct {
	opts     OverlapOptions
	backends map[string]*cloudsim.Backend
	names    []string
	users    []*core.Client // one primary device per user
	obs      *obs.Observer
	chunk    *chunker.Chunker
	conv     *erasure.ConvergentCoder
	datasets [][]overlapFile

	mu     sync.Mutex
	acked  []AckedWrite // Client field holds the user id ("user<u>")
	report OverlapReport
}

func overlapUserKey(u int) string { return fmt.Sprintf("user%d-key", u) }

// newOverlapWorld builds backends, one dedup-mode client per user, and the
// scripted datasets: round(Overlap*Files) files are byte-identical across
// every user, the rest are private to each.
func newOverlapWorld(opts OverlapOptions) (*overlapWorld, error) {
	opts = opts.withDefaults()
	w := &overlapWorld{
		opts:     opts,
		backends: make(map[string]*cloudsim.Backend),
		obs:      obs.NewObserver(),
		conv:     erasure.NewConvergentCoder(harnessDedupSecret),
	}
	ch, err := chunker.New(chunkingConfig)
	if err != nil {
		return nil, err
	}
	w.chunk = ch
	for i := 0; i < opts.Providers; i++ {
		name := fmt.Sprintf("csp%c", 'a'+i)
		identity := csp.NameKeyed
		if i%2 == 1 {
			identity = csp.IDKeyed
		}
		w.backends[name] = cloudsim.NewBackend(name, identity, 0)
		w.names = append(w.names, name)
	}
	sort.Strings(w.names)
	for u := 0; u < opts.Users; u++ {
		c, err := w.buildUser(u, fmt.Sprintf("user%d-dev0", u), w.obs)
		if err != nil {
			return nil, err
		}
		w.users = append(w.users, c)
	}

	// Datasets: the shared pool first (identical bytes for every user, from
	// the run seed), then per-user private files (from a user-salted seed).
	shared := int(float64(opts.Files)*opts.Overlap + 0.5)
	sharedRng := rand.New(rand.NewSource(opts.Seed))
	sharedFiles := make([]overlapFile, shared)
	for i := range sharedFiles {
		data := make([]byte, opts.FileSize)
		sharedRng.Read(data)
		sharedFiles[i] = overlapFile{name: fmt.Sprintf("shared-%d", i), data: data}
	}
	for u := 0; u < opts.Users; u++ {
		files := append([]overlapFile(nil), sharedFiles...)
		privRng := rand.New(rand.NewSource(opts.Seed + 1_000_003*int64(u+1)))
		for i := shared; i < opts.Files; i++ {
			data := make([]byte, opts.FileSize)
			privRng.Read(data)
			files = append(files, overlapFile{name: fmt.Sprintf("private-%d", i), data: data})
		}
		w.datasets = append(w.datasets, files)
	}
	return w, nil
}

// buildUser assembles one authenticated dedup-mode client for user u.
func (w *overlapWorld) buildUser(u int, id string, o *obs.Observer) (*core.Client, error) {
	cfg := core.Config{
		ClientID:    id,
		Key:         overlapUserKey(u),
		T:           w.opts.T,
		N:           w.opts.N,
		MetaT:       w.opts.MetaT,
		Chunking:    chunkingConfig,
		Obs:         o,
		DedupMode:   true,
		DedupSecret: harnessDedupSecret,
	}
	var stores []csp.Store
	for _, name := range w.names {
		s := cloudsim.NewSimStore(w.backends[name])
		if err := s.Authenticate(context.Background(), csp.Credentials{Token: "harness"}); err != nil {
			return nil, err
		}
		stores = append(stores, s)
	}
	return core.New(cfg, stores)
}

// inspector builds a fresh device of user u: key and accounts only.
func (w *overlapWorld) inspector(u int, id string) (*core.Client, error) {
	return w.buildUser(u, id, nil)
}

func (w *overlapWorld) violate(invariant, format string, args ...any) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.report.Violations = append(w.report.Violations, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

// uploadAll runs every user's uploads concurrently, one goroutine per
// user — equal chunks race each other onto the providers, exercising the
// reference-token protocol's concurrent-create path (run under -race).
func (w *overlapWorld) uploadAll(ctx context.Context) error {
	var wg sync.WaitGroup
	errs := make([]error, len(w.users))
	for u := range w.users {
		u := u
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, f := range w.datasets[u] {
				if err := w.users[u].Put(ctx, f.name, f.data); err != nil {
					errs[u] = fmt.Errorf("user%d put %s: %w", u, f.name, err)
					return
				}
				head, _, err := w.users[u].Tree().Head(f.name)
				if err != nil {
					errs[u] = err
					return
				}
				w.mu.Lock()
				w.acked = append(w.acked, AckedWrite{
					File: f.name, VersionID: head.VersionID(),
					Client: fmt.Sprintf("user%d", u), Data: f.data,
				})
				w.mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// chunkExpectation is the oracle's view of one unique chunk.
type chunkExpectation struct {
	id    string
	data  []byte
	users map[int]bool // users whose dataset contains the chunk
}

// expectations re-chunks every dataset and unions the result.
func (w *overlapWorld) expectations() map[string]*chunkExpectation {
	exp := make(map[string]*chunkExpectation)
	for u, files := range w.datasets {
		for _, f := range files {
			for _, chunk := range w.chunk.Split(f.data) {
				id := metadata.HashData(chunk.Data)
				e := exp[id]
				if e == nil {
					e = &chunkExpectation{id: id, data: append([]byte(nil), chunk.Data...), users: make(map[int]bool)}
					exp[id] = e
				}
				e.users[u] = true
			}
		}
	}
	return exp
}

// checkAll runs every oracle and fills in the report.
func (w *overlapWorld) checkAll(ctx context.Context) *OverlapReport {
	exp := w.expectations()
	w.checkCASState(exp)
	w.checkDedupAccounting(exp)
	w.checkDurability(ctx)
	w.checkMetaReplication()
	return &w.report
}

// checkCASState walks raw provider state: every expected share object of
// every unique chunk exists exactly once with byte-exact content and the
// exact token set of its referencing users; no provider doubles up on a
// chunk; no provider can reconstruct one; nothing unaccounted is stored
// under the CAS prefix.
func (w *overlapWorld) checkCASState(exp map[string]*chunkExpectation) {
	t, n := w.opts.T, w.opts.N
	naming := w.users[0]

	type objExp struct {
		chunk *chunkExpectation
		index int
		data  []byte
	}
	want := make(map[string]objExp, len(exp)*n)
	var expectedBytes, singleUser, logicalBytes int64
	for _, e := range exp {
		shares, err := w.conv.For(e.id).Encode(e.data, t, n)
		if err != nil {
			w.violate("convergence", "chunk %s does not encode: %v", short(e.id), err)
			continue
		}
		for i := 0; i < n; i++ {
			want[naming.ShareObjectName(e.id, i, t)] = objExp{chunk: e, index: i, data: shares[i].Data}
		}
		size := int64(n) * erasure.ShareSize(int64(len(e.data)), t)
		expectedBytes += size
		logicalBytes += size * int64(len(e.users))
		if e.users[0] {
			singleUser += size
		}
	}
	w.mu.Lock()
	w.report.UniqueChunks = len(exp)
	for _, e := range exp {
		w.report.TotalChunks += len(e.users)
	}
	w.report.ExpectedBytes = expectedBytes
	w.report.SingleUser = singleUser
	w.report.LogicalBytes = logicalBytes
	w.mu.Unlock()

	tokenOf := make(map[int]string, len(w.users))
	for u, c := range w.users {
		tokenOf[u] = c.RefToken()
	}

	seen := make(map[string][]string) // object name -> providers holding it
	var measured int64
	for _, cspName := range w.names {
		b := w.backends[cspName]
		perChunk := make(map[string]int) // chunk id -> distinct shares here
		for _, obj := range b.ObjectNames(core.CASPrefix) {
			oe, ok := want[obj]
			if !ok {
				w.violate("garbage", "%s: unaccounted content-addressed object %q", cspName, obj)
				continue
			}
			seen[obj] = append(seen[obj], cspName)
			data, _ := b.PeekObject(obj)
			measured += int64(len(data))
			if !bytes.Equal(data, oe.data) {
				w.violate("convergence", "%s: object %s content diverges from the convergent encoding", cspName, short(obj))
			}
			perChunk[oe.chunk.id]++

			toks := b.RefTokens(obj)
			wantToks := make(map[string]bool, len(oe.chunk.users))
			for u := range oe.chunk.users {
				wantToks[tokenOf[u]] = true
			}
			if len(toks) != len(wantToks) {
				w.violate("refcount", "%s %s: %d reference tokens, want %d (one per referencing user)",
					cspName, short(obj), len(toks), len(wantToks))
				continue
			}
			for _, tok := range toks {
				if !wantToks[tok] {
					w.violate("refcount", "%s %s: token %s belongs to no referencing user", cspName, short(obj), tok)
				}
			}
		}
		for id, count := range perChunk {
			if count >= t {
				w.violate("privacy", "%s holds %d shares of chunk %s — enough to reconstruct (t=%d)", cspName, count, short(id), t)
			}
		}
	}
	w.mu.Lock()
	w.report.CASBytes = measured
	w.mu.Unlock()

	for obj, oe := range want {
		switch holders := seen[obj]; len(holders) {
		case 0:
			w.violate("durability", "share object %s of chunk %s exists nowhere", short(obj), short(oe.chunk.id))
		case 1:
			// The converged state: exactly one copy per share object.
		default:
			w.violate("placement", "share object %s stored on %d providers %v — dedup should store one copy", short(obj), len(holders), holders)
		}
	}
}

// checkDedupAccounting verifies the measured footprint and the dedup
// metrics against the scripted overlap, including the acceptance bound.
func (w *overlapWorld) checkDedupAccounting(exp map[string]*chunkExpectation) {
	w.mu.Lock()
	r := w.report
	w.mu.Unlock()
	if r.CASBytes != r.ExpectedBytes {
		w.violate("dedup", "raw CAS bytes %d != union footprint %d (dedup ratio drifted from the overlap script)",
			r.CASBytes, r.ExpectedBytes)
	}
	// The ISSUE acceptance bound: at >= 90%% overlap with two users, the
	// raw bytes on the CSPs stay within 15%% of a single user's footprint.
	if w.opts.Users == 2 && w.opts.Overlap >= 0.9 && r.SingleUser > 0 {
		if float64(r.CASBytes) > 1.15*float64(r.SingleUser) {
			w.violate("dedup", "two-user CAS bytes %d exceed 1.15x single-user footprint %d at %.0f%% overlap",
				r.CASBytes, r.SingleUser, 100*w.opts.Overlap)
		}
	}

	// Metric oracle: every duplicate share upload is a hit, every unique
	// one a miss, and the bytes saved are exactly the duplicate footprint.
	var wantHits, wantMisses, wantSaved int64
	for _, e := range exp {
		dups := int64(len(e.users) - 1)
		wantHits += dups * int64(w.opts.N)
		wantMisses += int64(w.opts.N)
		wantSaved += dups * int64(w.opts.N) * erasure.ShareSize(int64(len(e.data)), w.opts.T)
	}
	snap := w.obs.Registry().Snapshot()
	sum := func(name string) (total int64) {
		for _, p := range snap.Metrics {
			if p.Name == name {
				total += int64(p.Value)
			}
		}
		return total
	}
	hits, misses, saved := sum(obs.MetricDedupHits), sum(obs.MetricDedupMisses), sum(obs.MetricDedupBytesSaved)
	w.mu.Lock()
	w.report.DedupHits, w.report.DedupMisses, w.report.DedupSaved = hits, misses, saved
	w.mu.Unlock()
	if hits != wantHits || misses != wantMisses || saved != wantSaved {
		w.violate("dedup", "metrics hits=%d misses=%d saved=%d, want hits=%d misses=%d saved=%d",
			hits, misses, saved, wantHits, wantMisses, wantSaved)
	}
}

// checkDurability fails every provider subset of size n−t and re-reads
// every user's acknowledged writes through a fresh device of that user.
func (w *overlapWorld) checkDurability(ctx context.Context) {
	w.mu.Lock()
	acked := append([]AckedWrite(nil), w.acked...)
	w.mu.Unlock()
	perUser := make(map[int][]AckedWrite)
	for _, aw := range acked {
		var u int
		fmt.Sscanf(aw.Client, "user%d", &u)
		perUser[u] = append(perUser[u], aw)
	}
	for si, subset := range combinations(w.names, w.opts.N-w.opts.T) {
		for _, name := range subset {
			w.backends[name].SetAvailable(false)
		}
		for u := range w.users {
			insp, err := w.inspector(u, fmt.Sprintf("insp-u%d-s%d", u, si))
			if err != nil {
				w.violate("durability", "building user%d recovery device: %v", u, err)
				continue
			}
			// Foreign users' records are unreadable by design, so the sync
			// reports an error while absorbing everything this user owns;
			// the reads below are the actual oracle.
			_, _ = insp.Sync(ctx)
			insp.ChunkTable().Rebuild(insp.Tree().All())
			for _, aw := range perUser[u] {
				got, _, err := insp.GetVersion(ctx, aw.File, aw.VersionID)
				if err != nil {
					w.violate("durability", "user%d with %v down: %s version %s unreadable: %v",
						u, subset, aw.File, short(aw.VersionID), err)
					continue
				}
				if !bytes.Equal(got, aw.Data) {
					w.violate("durability", "user%d with %v down: %s read back wrong bytes", u, subset, aw.File)
				}
			}
		}
		for _, name := range subset {
			w.backends[name].SetAvailable(true)
		}
	}
}

// checkMetaReplication verifies every acknowledged version of every user
// stays recoverable from >= MetaT intact metadata shares. Metadata is
// per-user (keyed by the user's secret), so the shares are recomputed with
// each user's own coder.
func (w *overlapWorld) checkMetaReplication() {
	n := len(w.names)
	metaT := w.opts.MetaT
	if metaT > n {
		metaT = n
	}
	w.mu.Lock()
	acked := append([]AckedWrite(nil), w.acked...)
	w.mu.Unlock()
	for _, aw := range acked {
		var u int
		fmt.Sscanf(aw.Client, "user%d", &u)
		coder := erasure.NewCoder(overlapUserKey(u))
		m, err := w.users[u].Tree().Get(aw.VersionID)
		if err != nil {
			w.violate("meta-replication", "user%d version %s missing from its own tree", u, short(aw.VersionID))
			continue
		}
		blob, err := metadata.Encode(m)
		if err != nil {
			w.violate("meta-replication", "version %s does not re-encode: %v", short(aw.VersionID), err)
			continue
		}
		expected, err := coder.Encode(blob, metaT, n)
		if err != nil {
			w.violate("meta-replication", "version %s share recomputation failed: %v", short(aw.VersionID), err)
			continue
		}
		intact := 0
		for idx := 0; idx < n; idx++ {
			name := w.users[u].MetaShareObjectName(aw.VersionID, idx)
			for _, cspName := range w.names {
				if data, ok := w.backends[cspName].PeekObject(name); ok && bytes.Equal(data, expected[idx].Data) {
					intact++
					break
				}
			}
		}
		if intact < metaT {
			w.violate("meta-replication", "user%d version %s: %d intact metadata shares, need %d",
				u, short(aw.VersionID), intact, metaT)
		}
	}
}

// checkNoZeroRefObjects asserts no content-addressed object survives with
// an empty token set (one should be deleted the moment its last reference
// drains) — the "nothing survives refcount zero" half of the GC contract.
func (w *overlapWorld) checkNoZeroRefObjects() {
	for _, cspName := range w.names {
		b := w.backends[cspName]
		for _, obj := range b.ObjectNames(core.CASPrefix) {
			if len(b.RefTokens(obj)) == 0 {
				w.violate("refcount", "%s: object %s has zero reference tokens but still exists", cspName, short(obj))
			}
		}
	}
}
