package harness

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/metadata"
)

// step runs one workload operation: a PRNG-chosen client performs a
// PRNG-chosen operation. Operations are sequential — each completes before
// the next is drawn — so the op sequence is a pure function of the seed
// and the schedule. Operation failures under faults are tolerated (that is
// the point of the harness); what is never tolerated is a *successful*
// operation returning wrong data, which is checked inline.
func (h *Harness) step(ctx context.Context, i int) {
	c := h.clients[h.rng.Intn(len(h.clients))]
	name := fmt.Sprintf("f%02d", h.rng.Intn(h.opts.Files))
	switch p := h.rng.Intn(100); {
	case p < 35:
		h.doPut(ctx, c, name)
	case p < 60:
		h.doGet(ctx, c, name, i)
	case p < 68:
		_ = c.Delete(ctx, name)
	case p < 76:
		_, _ = c.Sync(ctx)
	case p < 84:
		h.doRange(ctx, c, name, i)
	case p < 90:
		_, _ = c.Stat(ctx, name)
	case p < 95:
		_, _ = c.List(ctx, "")
	case p < 98:
		h.doResolve(ctx, c)
	default:
		_, _ = c.GC(ctx)
	}
}

// doPut uploads fresh or edited content and, on acknowledgment, records
// the (file, version, bytes) triple in the durability oracle. Failed Puts
// are recorded too: their chunk shares are legitimate residue that the
// garbage check must account for.
func (h *Harness) doPut(ctx context.Context, c *core.Client, name string) {
	var data []byte
	if last, ok := h.lastAcked[name]; ok && h.rng.Intn(2) == 0 {
		data = append(append([]byte{}, last...), h.randBytes(1+h.rng.Intn(256))...)
	} else {
		data = h.randBytes(1 + h.rng.Intn(h.opts.MaxBytes))
	}
	var err error
	if h.opts.Streaming {
		// Feed the scanner through ragged fragments so the pipeline's fill
		// loop sees short reads mid-chunk, not one tidy buffer.
		err = c.PutReader(ctx, name, &raggedReader{data: data, rng: h.rng})
	} else {
		err = c.Put(ctx, name, data)
	}
	if err != nil {
		h.failedPuts = append(h.failedPuts, data)
		h.report.FailedPuts++
		return
	}
	vid := h.findVersion(c, name, metadata.HashData(data))
	if vid == "" {
		h.violate("read", "acked Put of %s not visible in the writer's own tree", name)
		return
	}
	h.acked = append(h.acked, AckedWrite{File: name, VersionID: vid, Client: c.ID(), Data: data})
	h.ackedByVID[vid] = data
	h.lastAcked[name] = data
	h.report.Acked++
	h.report.AckedVIDs = append(h.report.AckedVIDs, vid)
	if (h.opts.BreakPlacement || h.opts.BreakDurability) && !h.sabotaged {
		h.sabotaged = true
		h.sabotage(data)
	}
}

// raggedReader serves its data in PRNG-sized fragments (1..512 bytes) so a
// streamed Put exercises the scanner's partial-fill path. Reads happen on
// the workload goroutine inside PutReader, so sharing the harness PRNG is
// safe and keeps the run reproducible.
type raggedReader struct {
	data []byte
	rng  *rand.Rand
	off  int
}

func (r *raggedReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	want := 1 + r.rng.Intn(512)
	if want > len(p) {
		want = len(p)
	}
	n := copy(p[:want], r.data[r.off:])
	r.off += n
	return n, nil
}

// findVersion locates the version node serving the given content for the
// file. The head covers the common case; after conflicting writes the
// acked version may be a non-head leaf, so fall back to a full scan.
func (h *Harness) findVersion(c *core.Client, name, contentID string) string {
	if head, _, err := c.Tree().Head(name); err == nil && head.File.ID == contentID {
		return head.VersionID()
	}
	best := ""
	for _, m := range c.Tree().All() {
		if m.File.Name != name || m.File.ID != contentID || m.File.Deleted {
			continue
		}
		if vid := m.VersionID(); vid > best {
			best = vid
		}
	}
	return best
}

// doGet reads a file and verifies the fundamental read guarantee: a
// successful Get must return exactly the bytes of some acknowledged write
// of that file — never a torn, corrupted, or phantom version.
func (h *Harness) doGet(ctx context.Context, c *core.Client, name string, i int) {
	var (
		got  []byte
		info core.FileInfo
		err  error
	)
	if h.opts.Streaming {
		var buf bytes.Buffer
		info, err = c.GetTo(ctx, name, &buf)
		got = buf.Bytes()
	} else {
		got, info, err = c.Get(ctx, name)
	}
	if err != nil {
		return
	}
	h.report.Reads++
	want, ok := h.ackedByVID[info.VersionID]
	if !ok && len(h.opts.Classes) > 0 {
		// A lifecycle demotion republishes acknowledged content under a
		// version ID the oracle has not seen yet (the migrator runs
		// concurrently with the workload). The read is legitimate iff the
		// bytes are exactly some acknowledged write of this file.
		for _, aw := range h.acked {
			if aw.File == name && bytes.Equal(got, aw.Data) {
				h.ackedByVID[info.VersionID] = aw.Data
				want, ok = aw.Data, true
				break
			}
		}
	}
	if !ok {
		h.violate("read", "op %d: Get(%s) served unacknowledged version %s", i, name, short(info.VersionID))
		return
	}
	if !bytes.Equal(got, want) {
		h.violate("read", "op %d: Get(%s) version %s returned %d bytes, want %d (content mismatch)",
			i, name, short(info.VersionID), len(got), len(want))
	}
}

// doRange reads a random slice and checks it against the acknowledged
// content of whichever version the client served.
func (h *Harness) doRange(ctx context.Context, c *core.Client, name string, i int) {
	last := h.lastAcked[name]
	if len(last) == 0 {
		return
	}
	off := h.rng.Intn(len(last))
	ln := 1 + h.rng.Intn(len(last)-off)
	got, info, err := c.GetRange(ctx, name, int64(off), int64(ln))
	if err != nil {
		return
	}
	h.report.Reads++
	want, ok := h.ackedByVID[info.VersionID]
	if !ok && len(h.opts.Classes) > 0 {
		// Same demoted-version allowance as doGet, matched on the slice.
		for _, aw := range h.acked {
			if aw.File != name || off >= len(aw.Data) {
				continue
			}
			end := off + ln
			if end > len(aw.Data) {
				end = len(aw.Data)
			}
			if bytes.Equal(got, aw.Data[off:end]) {
				want, ok = aw.Data, true
				break
			}
		}
	}
	if !ok {
		h.violate("read", "op %d: GetRange(%s) served unacknowledged version %s", i, name, short(info.VersionID))
		return
	}
	if off >= len(want) {
		return
	}
	end := off + ln
	if end > len(want) {
		end = len(want)
	}
	if !bytes.Equal(got, want[off:end]) {
		h.violate("read", "op %d: GetRange(%s)[%d:%d] content mismatch", i, name, off, end)
	}
}

// doResolve settles the first currently detected conflict, picking a
// random winner among the competing versions.
func (h *Harness) doResolve(ctx context.Context, c *core.Client) {
	for _, cf := range c.Tree().Conflicts() {
		winner := cf.Versions[h.rng.Intn(len(cf.Versions))]
		_ = c.Resolve(ctx, cf.Name, winner)
		return
	}
}

// sabotage performs the seeded-bug injection for the harness's self-test:
// it deliberately violates an invariant at the storage layer to prove the
// checker catches it.
func (h *Harness) sabotage(data []byte) {
	chunks := h.chunk.Split(data)
	if len(chunks) == 0 {
		return
	}
	id := metadata.HashData(chunks[0].Data)
	c := h.clients[0]
	if h.opts.BreakDurability {
		// Silently destroy two of the chunk's share objects wherever they
		// live. With n−t = 1 tolerated loss the chunk becomes unrecoverable.
		for _, idx := range []int{0, 1} {
			obj := c.ShareObjectName(id, idx, h.opts.T)
			for _, name := range h.names {
				h.backends[name].RemoveObject(obj)
			}
		}
		return
	}
	// BreakPlacement: copy share 0 onto a provider that already holds a
	// different share of the same chunk — the state a broken placement
	// guard would produce.
	obj0 := c.ShareObjectName(id, 0, h.opts.T)
	var share0 []byte
	for _, name := range h.names {
		if data, ok := h.backends[name].PeekObject(obj0); ok {
			share0 = data
			break
		}
	}
	if share0 == nil {
		return
	}
	for _, name := range h.names {
		b := h.backends[name]
		if _, holds0 := b.PeekObject(obj0); holds0 {
			continue
		}
		for idx := 1; idx < h.opts.N; idx++ {
			if _, ok := b.PeekObject(c.ShareObjectName(id, idx, h.opts.T)); ok {
				b.InjectObject(obj0, share0, h.now())
				return
			}
		}
	}
}
