package harness

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/transfer"
)

// stormOptions is the redundancy-storm scenario: a virtual-time chaos run
// on a deliberately tiny transfer engine (two in-flight slots for a
// multi-chunk workload, so the admission queue sits past the hedge
// crossover for most of every Get) while provider links take turns
// collapsing to 5% bandwidth — the flap pattern that makes latency
// estimates stale and tempts the hedger exactly when redundancy is least
// affordable.
func stormOptions(seed int64, tweak func(*transfer.Tunables)) Options {
	tun := transfer.Tunables{
		MaxInFlight:     2,
		HedgeMinSamples: 4,
	}
	if tweak != nil {
		tweak(&tun)
	}
	return Options{
		Seed:     seed,
		Virtual:  true,
		Clients:  2,
		Ops:      120,
		Transfer: tun,
		Schedule: Schedule{
			{At: 10, Act: SlowLink, CSP: "cspa", Factor: 0.05},
			{At: 30, Act: RestoreLink, CSP: "cspa"},
			{At: 30, Act: SlowLink, CSP: "cspc", Factor: 0.05},
			{At: 50, Act: RestoreLink, CSP: "cspc"},
			{At: 50, Act: SlowLink, CSP: "cspe", Factor: 0.05},
			{At: 70, Act: RestoreLink, CSP: "cspe"},
			{At: 70, Act: SlowLink, CSP: "cspb", Factor: 0.05},
			{At: 90, Act: RestoreLink, CSP: "cspb"},
			{At: 90, Act: Checkpoint},
		},
	}
}

// p99BucketIndex returns the index of the first histogram bucket whose
// cumulative count covers the 99th percentile (len(buckets) when even the
// last bound does not, i.e. the overflow bucket).
func p99BucketIndex(p obs.MetricPoint) int {
	need := uint64(float64(p.Count)*0.99 + 0.5)
	for i, b := range p.Buckets {
		if b.Count >= need {
			return i
		}
	}
	return len(p.Buckets)
}

// TestRedundancyStorm drives the redundancy-storm scenario twice — once
// with the load-adaptive hedge controller live, once with hedging disabled
// — and checks the control loop's oracle on top of the usual invariant
// sweep: the loop must actually suppress hedges while the engine queue is
// past the crossover, and the suppression must keep the Get tail within
// one histogram bucket of the unhedged baseline (a hedge storm on the
// two-slot engine blows far past that).
func TestRedundancyStorm(t *testing.T) {
	seed := baseSeed(t)
	adaptive := runScenario(t, stormOptions(seed, nil))
	baseline := runScenario(t, stormOptions(seed, func(tun *transfer.Tunables) {
		tun.DisableHedge = true
	}))
	if t.Failed() { // invariant violations already reported
		return
	}
	if adaptive.Metrics == nil || baseline.Metrics == nil {
		t.Fatal("run report carries no metrics snapshot")
	}

	// The loop closed: hedges were withheld because of load, not chance.
	s := *adaptive.Metrics
	suppressed := 0.0
	for _, p := range s.Metrics {
		if p.Name == obs.MetricHedgeSuppressed && p.Labels["reason"] == "load" {
			suppressed += p.Value
		}
	}
	if suppressed == 0 {
		t.Error("no load-reason hedge suppression on a two-slot engine under flapping links — the crossover gate never fired")
	}

	// Tail bound: adaptive hedging may not degrade the Get tail by more
	// than one bucket (2.5x bound step) against the unhedged baseline.
	ap, ok := s.Find(obs.MetricOpDuration, map[string]string{"op": "get"})
	if !ok || ap.Count == 0 {
		t.Fatal("adaptive run recorded no get-latency histogram")
	}
	bp, ok := baseline.Metrics.Find(obs.MetricOpDuration, map[string]string{"op": "get"})
	if !ok || bp.Count == 0 {
		t.Fatal("baseline run recorded no get-latency histogram")
	}
	ai, bi := p99BucketIndex(ap), p99BucketIndex(bp)
	if ai > bi+1 {
		t.Errorf("adaptive get p99 falls in bucket %d, unhedged baseline in bucket %d: suppression failed to contain the storm", ai, bi)
	}
}
