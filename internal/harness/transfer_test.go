package harness

import (
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/transfer"
)

// TestTransferCapsUnderSlowLinks is the chaos scenario for the transfer
// engine: a multi-client virtual-time workload where two providers' links
// collapse to a few percent of their bandwidth mid-run. The run must (a)
// keep every system-wide invariant — in particular all replicas converge —
// and (b) never exceed the configured per-CSP in-flight cap on any
// provider, even while slow links pile transfers up behind the stragglers.
func TestTransferCapsUnderSlowLinks(t *testing.T) {
	const perCSP = 2
	rep := runScenario(t, Options{
		Seed:    baseSeed(t),
		Virtual: true,
		Clients: 2,
		Ops:     90,
		Transfer: transfer.Tunables{
			MaxInFlight: 8,
			PerCSP:      perCSP,
		},
		Schedule: Schedule{
			{At: 15, Act: SlowLink, CSP: "cspb", Factor: 0.05},
			{At: 30, Act: SlowLink, CSP: "cspd", Factor: 0.03},
			{At: 55, Act: RestoreLink, CSP: "cspb"},
			{At: 70, Act: RestoreLink, CSP: "cspd"},
		},
	})

	// runScenario already failed the test on any invariant violation
	// (durability, placement, privacy, convergence, ...). Here: the engine
	// must have kept the per-CSP cap. Both workload clients share the
	// observer, but every Set on the peak gauge carries one engine's own
	// high-water mark, so the snapshot value never legitimately exceeds
	// the cap.
	if rep.Metrics == nil {
		t.Fatal("report carries no metrics snapshot")
	}
	s := *rep.Metrics
	bound := float64(perCSP)
	sawPeak := false
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("csp%c", 'a'+i)
		p, ok := s.Find(obs.MetricTransferInFlightPeak, map[string]string{"csp": name})
		if !ok {
			continue
		}
		sawPeak = true
		if p.Value > bound {
			t.Errorf("provider %s in-flight peak %.0f exceeds bound %.0f (cap %d x 2 clients)",
				name, p.Value, bound, perCSP)
		}
	}
	if !sawPeak {
		t.Fatal("no per-CSP in-flight peak gauge in the snapshot — engine metrics not wired")
	}
	if rep.Acked == 0 {
		t.Fatal("no Put acknowledged under slow links")
	}
}
