package harness

import (
	"bytes"
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/erasure"
	"repro/internal/metadata"
)

// checkpoint quiesces the simulated world and audits every system-wide
// invariant by direct inspection of provider durable state and the
// clients' version trees. It is called at least once, at the end of the
// run; mid-run Checkpoint schedule steps call it too.
func (h *Harness) checkpoint(ctx context.Context) {
	h.quiesce(ctx)
	h.checkConvergence()
	h.checkCacheCoherence()

	tree := h.clients[0].Tree()
	records := tree.All()
	h.report.Versions = len(records)

	st := h.buildWorldState(records)
	h.report.Chunks = len(st.chunkRefs)
	h.classifyObjects(st)
	h.checkPlacementAndPrivacy(st)
	h.checkStructuralDurability(st)
	h.checkMetaReplication(tree, records, st)
	h.checkBehavioralDurability(ctx)
	h.report.Checkpoints++
}

// quiesce restores every provider and link, lets the clients probe failed
// providers back in, and syncs everyone so the trees can converge.
func (h *Harness) quiesce(ctx context.Context) {
	for _, name := range h.names {
		b := h.backends[name]
		b.SetAvailable(true)
		b.FailNext(0)
	}
	h.scaleLinks("", 1)
	for _, c := range h.clients {
		c.ProbeFailed(ctx)
	}
	// Two rounds: round one may publish resolution markers or migrated
	// state that round two then distributes to every replica.
	for round := 0; round < 2; round++ {
		for _, c := range h.clients {
			_, _ = c.Sync(ctx)
		}
	}
}

// checkConvergence verifies all clients agree on the version set, on every
// file's head, and on the detected conflicts.
func (h *Harness) checkConvergence() {
	ref := h.clients[0]
	refIDs := ref.Tree().VersionIDs()
	refConf := fmt.Sprint(ref.Tree().Conflicts())
	for _, c := range h.clients[1:] {
		ids := c.Tree().VersionIDs()
		if !equalStrings(refIDs, ids) {
			h.violate("convergence", "%s and %s disagree on the version set (%d vs %d records)",
				ref.ID(), c.ID(), len(refIDs), len(ids))
			continue
		}
		if conf := fmt.Sprint(c.Tree().Conflicts()); conf != refConf {
			h.violate("convergence", "%s and %s disagree on conflicts: %s vs %s", ref.ID(), c.ID(), refConf, conf)
		}
	}
	for _, name := range ref.Tree().Names() {
		h0, conflicted0, err0 := ref.Tree().Head(name)
		for _, c := range h.clients[1:] {
			hc, conflictedC, errC := c.Tree().Head(name)
			if (err0 == nil) != (errC == nil) || conflicted0 != conflictedC {
				h.violate("convergence", "%s and %s disagree on head state of %s", ref.ID(), c.ID(), name)
				continue
			}
			if err0 == nil && h0.VersionID() != hc.VersionID() {
				h.violate("convergence", "%s and %s disagree on head of %s: %s vs %s",
					ref.ID(), c.ID(), name, short(h0.VersionID()), short(hc.VersionID()))
			}
		}
	}
}

// checkCacheCoherence verifies no client would serve a superseded version
// from its metadata cache. After quiesce every client has absorbed every
// record (absorbing invalidates the name's cached entries), so whatever
// survives in a cache must be exactly the tree's live head — a stale or
// deleted cached head means an invalidation was missed and a read would
// have served a superseded version.
func (h *Harness) checkCacheCoherence() {
	for _, c := range h.clients {
		for _, name := range c.Tree().Names() {
			vid, ok := c.CachedHeadVersion(name)
			if !ok {
				continue
			}
			head, _, err := c.Tree().Head(name)
			if err != nil {
				h.violate("cache", "%s caches head %s of %s but the tree has no head", c.ID(), short(vid), name)
				continue
			}
			if head.File.Deleted {
				h.violate("cache", "%s caches head %s of deleted file %s", c.ID(), short(vid), name)
				continue
			}
			if head.VersionID() != vid {
				h.violate("cache", "%s caches stale head %s of %s (tree head %s)",
					c.ID(), short(vid), name, short(head.VersionID()))
			}
		}
	}
}

// worldState is everything the offline checks need: which chunks exist,
// their parameters and contents, the expected bytes of every share, and
// which provider physically holds which share index.
type worldState struct {
	chunkRefs    map[string]metadata.ChunkRef // referenced chunks
	chunkShares  map[string][]erasure.Share   // chunk -> expected shares (content known)
	shareNames   map[string]shareKey          // object name -> (chunk, index) for every known chunk
	knownVIDs    map[string]bool
	presence     map[string]map[string]map[int]bool // chunk -> csp -> indices physically present
	intact       map[string]map[int]bool            // chunk -> indices with >= 1 byte-exact copy
	ghostIndices map[string]map[int]bool            // unknown vid -> meta share indices present
}

type shareKey struct {
	chunk      string
	index      int
	referenced bool
}

func (h *Harness) buildWorldState(records []*metadata.FileMeta) *worldState {
	st := &worldState{
		chunkRefs:    make(map[string]metadata.ChunkRef),
		chunkShares:  make(map[string][]erasure.Share),
		shareNames:   make(map[string]shareKey),
		knownVIDs:    make(map[string]bool),
		presence:     make(map[string]map[string]map[int]bool),
		intact:       make(map[string]map[int]bool),
		ghostIndices: make(map[string]map[int]bool),
	}
	for _, m := range records {
		st.knownVIDs[m.VersionID()] = true
		for _, ref := range m.Chunks {
			if prev, ok := st.chunkRefs[ref.ID]; ok && (prev.T != ref.T || prev.N != ref.N) {
				h.violate("placement", "chunk %s referenced with conflicting parameters (%d,%d) vs (%d,%d)",
					short(ref.ID), prev.T, prev.N, ref.T, ref.N)
				continue
			}
			st.chunkRefs[ref.ID] = ref
		}
	}

	// Recompute expected share bytes for every chunk whose content the
	// oracle knows (all of them, unless a Put raced a crash so oddly that
	// even its residue is unknowable — impossible here, since the oracle
	// records contents before the Put runs).
	naming := h.clients[0]
	addContent := func(data []byte) {
		for _, chunk := range h.chunk.Split(data) {
			id := metadata.HashData(chunk.Data)
			if _, done := st.chunkShares[id]; done {
				continue
			}
			t, n := h.opts.T, h.opts.N
			referenced := false
			if ref, ok := st.chunkRefs[id]; ok {
				t, n, referenced = ref.T, ref.N, true
			}
			// Dedup runs disperse with the content-derived coder, so the
			// expected bytes come from it too (the names below already do:
			// the naming client is in dedup mode whenever the run is).
			coder := h.coder
			if h.conv != nil {
				coder = h.conv.For(id)
			}
			shares, err := coder.Encode(chunk.Data, t, n)
			if err != nil {
				continue
			}
			st.chunkShares[id] = shares
			for i := 0; i < n; i++ {
				st.shareNames[naming.ShareObjectName(id, i, t)] = shareKey{chunk: id, index: i, referenced: referenced}
			}
		}
	}
	for _, aw := range h.acked {
		addContent(aw.Data)
	}
	for _, data := range h.failedPuts {
		addContent(data)
	}
	return st
}

// classifyObjects walks every object on every provider and accounts for
// it: a share of a known chunk, a metadata share of a known version,
// residue of a failed metadata upload, or the CSP status list. Anything
// else is garbage — and a metadata record durable enough to be readable
// (>= MetaT shares) that no client's tree contains is a lost update.
func (h *Harness) classifyObjects(st *worldState) {
	for _, cspName := range h.names {
		b := h.backends[cspName]
		for _, obj := range b.ObjectNames("") {
			if key, ok := st.shareNames[obj]; ok {
				if !key.referenced {
					continue // residue of a failed Put: allowed, not tracked
				}
				if st.presence[key.chunk] == nil {
					st.presence[key.chunk] = make(map[string]map[int]bool)
				}
				if st.presence[key.chunk][cspName] == nil {
					st.presence[key.chunk][cspName] = make(map[int]bool)
				}
				st.presence[key.chunk][cspName][key.index] = true
				data, _ := b.PeekObject(obj)
				expected := st.chunkShares[key.chunk][key.index].Data
				if bytes.Equal(data, expected) {
					if st.intact[key.chunk] == nil {
						st.intact[key.chunk] = make(map[int]bool)
					}
					st.intact[key.chunk][key.index] = true
				} else if !h.corrupted[cspName+"/"+obj] {
					h.violate("durability", "%s: share object %s has unexplained content rot", cspName, short(obj))
				}
				continue
			}
			if vid, idx, ok := core.ParseMetaShareObjectName(obj); ok {
				if st.knownVIDs[vid] {
					continue // verified by checkMetaReplication
				}
				if st.ghostIndices[vid] == nil {
					st.ghostIndices[vid] = make(map[int]bool)
				}
				st.ghostIndices[vid][idx] = true
				continue
			}
			if isCSPList(obj) {
				continue
			}
			h.violate("garbage", "%s: unaccounted object %q", cspName, obj)
		}
	}
	for vid, idxs := range st.ghostIndices {
		if len(idxs) >= h.opts.MetaT {
			h.violate("garbage", "version %s is recoverable from %d metadata shares but in no client's tree (lost update)",
				short(vid), len(idxs))
		}
	}
}

// checkPlacementAndPrivacy enforces the dispersal constraints on physical
// state: no provider holds two shares of a chunk, no platform (cluster)
// holds two, and no platform accumulates t or more distinct shares — the
// reconstruction threshold (paper §4.3: at most one share per platform).
func (h *Harness) checkPlacementAndPrivacy(st *worldState) {
	for id, perCSP := range st.presence {
		ref := st.chunkRefs[id]
		perPlatform := make(map[string]map[int]bool)
		for cspName, idxs := range perCSP {
			if len(idxs) > 1 {
				h.violate("placement", "provider %s holds %d distinct shares of chunk %s", cspName, len(idxs), short(id))
			}
			platform := cspName
			if h.clusters != nil {
				platform = h.clusters[cspName]
			}
			if perPlatform[platform] == nil {
				perPlatform[platform] = make(map[int]bool)
			}
			for idx := range idxs {
				perPlatform[platform][idx] = true
			}
		}
		for platform, idxs := range perPlatform {
			if h.clusters != nil && len(idxs) > 1 {
				h.violate("placement", "platform %s holds %d distinct shares of chunk %s", platform, len(idxs), short(id))
			}
			if len(idxs) >= ref.T {
				h.violate("privacy", "platform %s holds %d shares of chunk %s — enough to reconstruct it (t=%d)",
					platform, len(idxs), short(id), ref.T)
			}
		}
	}
}

// checkStructuralDurability verifies at the object level that every
// referenced chunk still has all n share objects somewhere and at least t
// of them intact — i.e. the system never silently dropped below its
// declared fault tolerance, and deletion never garbage-collected shares
// that other versions still reference.
func (h *Harness) checkStructuralDurability(st *worldState) {
	for id, ref := range st.chunkRefs {
		distinct := make(map[int]bool)
		for _, idxs := range st.presence[id] {
			for idx := range idxs {
				distinct[idx] = true
			}
		}
		if len(distinct) < ref.N {
			h.violate("durability", "chunk %s: only %d of %d share objects exist", short(id), len(distinct), ref.N)
		}
		if _, known := st.chunkShares[id]; known && len(st.intact[id]) < ref.T {
			h.violate("durability", "chunk %s: only %d intact shares, need %d to decode", short(id), len(st.intact[id]), ref.T)
		}
	}
}

// checkMetaReplication recomputes the expected bytes of every metadata
// share (the codec is deterministic and the coder's evaluation points are
// prefix-stable in n) and verifies each version stays recoverable from at
// least MetaT intact shares spread over the providers.
func (h *Harness) checkMetaReplication(tree *metadata.Tree, records []*metadata.FileMeta, st *worldState) {
	n := len(h.names)
	metaT := h.opts.MetaT
	if metaT > n {
		metaT = n
	}
	for _, m := range records {
		vid := m.VersionID()
		blob, err := metadata.Encode(m)
		if err != nil {
			h.violate("meta-replication", "version %s does not re-encode: %v", short(vid), err)
			continue
		}
		expected, err := h.coder.Encode(blob, metaT, n)
		if err != nil {
			h.violate("meta-replication", "version %s share recomputation failed: %v", short(vid), err)
			continue
		}
		intact := make(map[int]bool)
		present := make(map[int]bool)
		for _, cspName := range h.names {
			b := h.backends[cspName]
			for idx := 0; idx < n; idx++ {
				data, ok := b.PeekObject(h.clients[0].MetaShareObjectName(vid, idx))
				if !ok {
					continue
				}
				present[idx] = true
				if bytes.Equal(data, expected[idx].Data) {
					intact[idx] = true
				}
			}
		}
		if len(intact) < metaT {
			h.violate("meta-replication", "version %s: %d intact metadata shares (%d present), need %d",
				short(vid), len(intact), len(present), metaT)
		}
	}
}

// checkBehavioralDurability is the end-to-end read check: for every
// provider subset of the configured kill size, fail the subset, build a
// fresh client from nothing but the key and the accounts (the paper's
// recover()), and re-read every acknowledged write byte-for-byte.
func (h *Harness) checkBehavioralDurability(ctx context.Context) {
	kills := h.opts.N - h.opts.T
	if h.opts.CheckKills > 0 {
		kills = h.opts.CheckKills
	} else if h.opts.CheckKills < 0 {
		kills = 0
	}
	// Deduplicate the oracle: re-putting identical content acks the same
	// version node again.
	seen := make(map[string]bool)
	var writes []AckedWrite
	for _, aw := range h.acked {
		if !seen[aw.VersionID] {
			seen[aw.VersionID] = true
			writes = append(writes, aw)
		}
	}
	for si, subset := range combinations(h.names, kills) {
		for _, name := range subset {
			h.backends[name].SetAvailable(false)
		}
		insp, err := h.inspector(fmt.Sprintf("inspector-%d-%d", h.report.Checkpoints, si))
		if err != nil {
			h.violate("durability", "building recovery client failed: %v", err)
		} else {
			// Sync errors are tolerated here only because residue of failed
			// metadata uploads is unreadable by design; any acked version
			// the sync failed to absorb is caught by the reads below.
			_, _ = insp.Sync(ctx)
			insp.ChunkTable().Rebuild(insp.Tree().All())
			for _, aw := range writes {
				got, _, err := insp.GetVersion(ctx, aw.File, aw.VersionID)
				if err != nil {
					h.violate("durability", "with %v failed: %s version %s unreadable: %v",
						subset, aw.File, short(aw.VersionID), err)
					continue
				}
				if !bytes.Equal(got, aw.Data) {
					h.violate("durability", "with %v failed: %s version %s read back wrong bytes",
						subset, aw.File, short(aw.VersionID))
				}
			}
		}
		for _, name := range subset {
			h.backends[name].SetAvailable(true)
		}
	}
}

// combinations returns every size-k subset of names, in deterministic
// order. k == 0 yields the single empty subset (the all-up read check).
func combinations(names []string, k int) [][]string {
	if k <= 0 {
		return [][]string{nil}
	}
	if k > len(names) {
		k = len(names)
	}
	var out [][]string
	subset := make([]string, 0, k)
	var rec func(start int)
	rec = func(start int) {
		if len(subset) == k {
			out = append(out, append([]string(nil), subset...))
			return
		}
		for i := start; i <= len(names)-(k-len(subset)); i++ {
			subset = append(subset, names[i])
			rec(i + 1)
			subset = subset[:len(subset)-1]
		}
	}
	rec(0)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	a2 := append([]string(nil), a...)
	b2 := append([]string(nil), b...)
	sort.Strings(a2)
	sort.Strings(b2)
	for i := range a2 {
		if a2[i] != b2[i] {
			return false
		}
	}
	return true
}
