package harness

import (
	"bytes"
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/erasure"
	"repro/internal/metadata"
)

// checkpoint quiesces the simulated world and audits every system-wide
// invariant by direct inspection of provider durable state and the
// clients' version trees. It is called at least once, at the end of the
// run; mid-run Checkpoint schedule steps call it too.
func (h *Harness) checkpoint(ctx context.Context) {
	h.joinLifecycle()
	h.quiesce(ctx)
	h.checkConvergence()
	h.checkCacheCoherence()

	tree := h.clients[0].Tree()
	records := tree.All()
	h.absorbDemotions(records)
	h.report.Versions = len(records)

	st := h.buildWorldState(records)
	h.report.Chunks = len(st.chunkRefs)
	h.classifyObjects(st)
	h.checkPlacementAndPrivacy(st)
	h.checkStructuralDurability(st)
	h.checkMetaReplication(tree, records, st)
	h.checkBehavioralDurability(ctx)
	h.report.Checkpoints++
}

// absorbDemotions folds lifecycle-published versions into the durability
// oracle. A demotion republishes acknowledged content under a new version
// ID the workload never acked; any non-deleted record whose content hash
// matches an acknowledged write of the same file is that write's demoted
// (or re-encoded) form and must satisfy the same read-back guarantee —
// the behavioral durability sweep then re-reads it through its own class's
// encoding. Records that match nothing are left alone: an unacked version
// a Get serves is still flagged by the read oracle.
func (h *Harness) absorbDemotions(records []*metadata.FileMeta) {
	if len(h.opts.Classes) == 0 {
		return
	}
	byHash := make(map[string][]byte, len(h.acked))
	for _, aw := range h.acked {
		byHash[metadata.HashData(aw.Data)] = aw.Data
	}
	for _, m := range records {
		vid := m.VersionID()
		if _, known := h.ackedByVID[vid]; known || m.File.Deleted {
			continue
		}
		data, ok := byHash[m.File.ID]
		if !ok {
			continue
		}
		h.ackedByVID[vid] = data
		h.acked = append(h.acked, AckedWrite{File: m.File.Name, VersionID: vid, Client: "lifecycle", Data: data})
	}
}

// quiesce restores every provider and link, lets the clients probe failed
// providers back in, and syncs everyone so the trees can converge.
func (h *Harness) quiesce(ctx context.Context) {
	for _, name := range h.names {
		b := h.backends[name]
		b.SetAvailable(true)
		b.FailNext(0)
	}
	h.scaleLinks("", 1)
	for _, c := range h.clients {
		c.ProbeFailed(ctx)
	}
	// Two rounds: round one may publish resolution markers or migrated
	// state that round two then distributes to every replica.
	for round := 0; round < 2; round++ {
		for _, c := range h.clients {
			_, _ = c.Sync(ctx)
		}
	}
}

// checkConvergence verifies all clients agree on the version set, on every
// file's head, and on the detected conflicts.
func (h *Harness) checkConvergence() {
	ref := h.clients[0]
	refIDs := ref.Tree().VersionIDs()
	refConf := fmt.Sprint(ref.Tree().Conflicts())
	for _, c := range h.clients[1:] {
		ids := c.Tree().VersionIDs()
		if !equalStrings(refIDs, ids) {
			h.violate("convergence", "%s and %s disagree on the version set (%d vs %d records)",
				ref.ID(), c.ID(), len(refIDs), len(ids))
			continue
		}
		if conf := fmt.Sprint(c.Tree().Conflicts()); conf != refConf {
			h.violate("convergence", "%s and %s disagree on conflicts: %s vs %s", ref.ID(), c.ID(), refConf, conf)
		}
	}
	for _, name := range ref.Tree().Names() {
		h0, conflicted0, err0 := ref.Tree().Head(name)
		for _, c := range h.clients[1:] {
			hc, conflictedC, errC := c.Tree().Head(name)
			if (err0 == nil) != (errC == nil) || conflicted0 != conflictedC {
				h.violate("convergence", "%s and %s disagree on head state of %s", ref.ID(), c.ID(), name)
				continue
			}
			if err0 == nil && h0.VersionID() != hc.VersionID() {
				h.violate("convergence", "%s and %s disagree on head of %s: %s vs %s",
					ref.ID(), c.ID(), name, short(h0.VersionID()), short(hc.VersionID()))
			}
		}
	}
}

// checkCacheCoherence verifies no client would serve a superseded version
// from its metadata cache. After quiesce every client has absorbed every
// record (absorbing invalidates the name's cached entries), so whatever
// survives in a cache must be exactly the tree's live head — a stale or
// deleted cached head means an invalidation was missed and a read would
// have served a superseded version.
func (h *Harness) checkCacheCoherence() {
	for _, c := range h.clients {
		for _, name := range c.Tree().Names() {
			vid, ok := c.CachedHeadVersion(name)
			if !ok {
				continue
			}
			head, _, err := c.Tree().Head(name)
			if err != nil {
				h.violate("cache", "%s caches head %s of %s but the tree has no head", c.ID(), short(vid), name)
				continue
			}
			if head.File.Deleted {
				h.violate("cache", "%s caches head %s of deleted file %s", c.ID(), short(vid), name)
				continue
			}
			if head.VersionID() != vid {
				h.violate("cache", "%s caches stale head %s of %s (tree head %s)",
					c.ID(), short(vid), name, short(head.VersionID()))
			}
		}
	}
}

// worldState is everything the offline checks need: which encodings exist,
// their parameters and contents, the expected bytes of every share, and
// which provider physically holds which share index. Everything is keyed
// by *encoding key* — metadata.EncodingKey(chunkID, class) — not by chunk
// ID: a lifecycle demotion legitimately leaves two coexisting encodings of
// one chunk (the hot original, still referenced by old versions, and the
// cold re-encode), each with its own (t, n).
type worldState struct {
	chunkRefs    map[string]metadata.ChunkRef // encoding key -> referenced encoding
	chunkShares  map[string][]erasure.Share   // encoding key -> expected shares (content known)
	shareNames   map[string][]shareKey        // object name -> every encoding it could serve
	knownVIDs    map[string]bool
	presence     map[string]map[string]map[int]bool // encoding -> csp -> indices physically present
	intact       map[string]map[int]bool            // encoding -> indices with >= 1 byte-exact copy
	ghostIndices map[string]map[int]bool            // unknown vid -> meta share indices present
}

type shareKey struct {
	enc        string // encoding key
	index      int
	referenced bool
}

// encodingCandidate is one (class, t, n) tuple the run's class config can
// produce; used to account residue of failed or in-flight re-encodes.
type encodingCandidate struct {
	class string
	t, n  int
}

// classEncodings lists every encoding the configured classes could write,
// default class first. Harness class scenarios declare explicit per-class
// (t, n) so the candidates are exact.
func (h *Harness) classEncodings() []encodingCandidate {
	out := []encodingCandidate{{class: "", t: h.opts.T, n: h.opts.N}}
	for _, cls := range h.opts.Classes {
		t, n := cls.T, cls.N
		if t == 0 {
			t = h.opts.T
		}
		if n == 0 {
			n = h.opts.N
		}
		out = append(out, encodingCandidate{class: cls.Name, t: t, n: n})
	}
	return out
}

func (h *Harness) buildWorldState(records []*metadata.FileMeta) *worldState {
	st := &worldState{
		chunkRefs:    make(map[string]metadata.ChunkRef),
		chunkShares:  make(map[string][]erasure.Share),
		shareNames:   make(map[string][]shareKey),
		knownVIDs:    make(map[string]bool),
		presence:     make(map[string]map[string]map[int]bool),
		intact:       make(map[string]map[int]bool),
		ghostIndices: make(map[string]map[int]bool),
	}
	for _, m := range records {
		st.knownVIDs[m.VersionID()] = true
		for _, ref := range m.Chunks {
			// A version's chunks are published atomically, so they all carry
			// the class the write (or re-encode) resolved — a mix means a
			// torn class transition escaped metadata atomicity.
			if ref.Class != m.Chunks[0].Class {
				h.violate("placement", "version %s mixes storage classes %q and %q (torn class transition)",
					short(m.VersionID()), m.Chunks[0].Class, ref.Class)
			}
			ek := metadata.EncodingKey(ref.ID, ref.Class)
			if prev, ok := st.chunkRefs[ek]; ok && (prev.T != ref.T || prev.N != ref.N) {
				h.violate("placement", "chunk %s class %q referenced with conflicting parameters (%d,%d) vs (%d,%d)",
					short(ref.ID), ref.Class, prev.T, prev.N, ref.T, ref.N)
				continue
			}
			st.chunkRefs[ek] = ref
		}
	}

	// Recompute expected share bytes for every chunk whose content the
	// oracle knows (all of them, unless a Put raced a crash so oddly that
	// even its residue is unknowable — impossible here, since the oracle
	// records contents before the Put runs).
	naming := h.clients[0]
	candidates := h.classEncodings()
	seen := make(map[string]bool)
	addContent := func(data []byte) {
		for _, chunk := range h.chunk.Split(data) {
			id := metadata.HashData(chunk.Data)
			if seen[id] {
				continue
			}
			seen[id] = true
			// Dedup runs disperse with the content-derived coder, so the
			// expected bytes come from it too (the names below already do:
			// the naming client is in dedup mode whenever the run is).
			coder := h.coder
			if h.conv != nil {
				coder = h.conv.For(id)
			}
			// Every referenced encoding of this chunk gets its expected
			// share bytes recomputed under its own (t, n).
			for _, cand := range candidates {
				ek := metadata.EncodingKey(id, cand.class)
				ref, referenced := st.chunkRefs[ek]
				t, n := cand.t, cand.n
				if referenced {
					t, n = ref.T, ref.N
				}
				if referenced {
					shares, err := coder.Encode(chunk.Data, t, n)
					if err != nil {
						continue
					}
					st.chunkShares[ek] = shares
				}
				// Share names are (chunk, index, t): unreferenced candidate
				// encodings are residue of failed Puts or failed/in-flight
				// re-encodes — legitimate, accounted, not durability-tracked.
				for i := 0; i < n; i++ {
					obj := naming.ShareObjectName(id, i, t)
					st.shareNames[obj] = append(st.shareNames[obj], shareKey{enc: ek, index: i, referenced: referenced})
				}
			}
		}
	}
	for _, aw := range h.acked {
		addContent(aw.Data)
	}
	for _, data := range h.failedPuts {
		addContent(data)
	}
	return st
}

// classifyObjects walks every object on every provider and accounts for
// it: a share of a known chunk, a metadata share of a known version,
// residue of a failed metadata upload, or the CSP status list. Anything
// else is garbage — and a metadata record durable enough to be readable
// (>= MetaT shares) that no client's tree contains is a lost update.
func (h *Harness) classifyObjects(st *worldState) {
	for _, cspName := range h.names {
		b := h.backends[cspName]
		for _, obj := range b.ObjectNames("") {
			if keys, ok := st.shareNames[obj]; ok {
				// One object name can serve several encodings (share names
				// depend on t, not class): account it toward every
				// referenced encoding it belongs to.
				for _, key := range keys {
					if !key.referenced {
						continue // residue of a failed Put or re-encode
					}
					if st.presence[key.enc] == nil {
						st.presence[key.enc] = make(map[string]map[int]bool)
					}
					if st.presence[key.enc][cspName] == nil {
						st.presence[key.enc][cspName] = make(map[int]bool)
					}
					st.presence[key.enc][cspName][key.index] = true
					data, _ := b.PeekObject(obj)
					expected := st.chunkShares[key.enc][key.index].Data
					if bytes.Equal(data, expected) {
						if st.intact[key.enc] == nil {
							st.intact[key.enc] = make(map[int]bool)
						}
						st.intact[key.enc][key.index] = true
					} else if !h.corrupted[cspName+"/"+obj] {
						h.violate("durability", "%s: share object %s has unexplained content rot", cspName, short(obj))
					}
				}
				continue
			}
			if vid, idx, ok := core.ParseMetaShareObjectName(obj); ok {
				if st.knownVIDs[vid] {
					continue // verified by checkMetaReplication
				}
				if st.ghostIndices[vid] == nil {
					st.ghostIndices[vid] = make(map[int]bool)
				}
				st.ghostIndices[vid][idx] = true
				continue
			}
			if isCSPList(obj) {
				continue
			}
			h.violate("garbage", "%s: unaccounted object %q", cspName, obj)
		}
	}
	for vid, idxs := range st.ghostIndices {
		if len(idxs) >= h.opts.MetaT {
			h.violate("garbage", "version %s is recoverable from %d metadata shares but in no client's tree (lost update)",
				short(vid), len(idxs))
		}
	}
}

// checkPlacementAndPrivacy enforces the dispersal constraints on physical
// state: no provider holds two shares of a chunk, no platform (cluster)
// holds two, and no platform accumulates t or more distinct shares — the
// reconstruction threshold (paper §4.3: at most one share per platform).
func (h *Harness) checkPlacementAndPrivacy(st *worldState) {
	for ek, perCSP := range st.presence {
		ref := st.chunkRefs[ek]
		perPlatform := make(map[string]map[int]bool)
		for cspName, idxs := range perCSP {
			if len(idxs) > 1 {
				h.violate("placement", "provider %s holds %d distinct shares of chunk %s", cspName, len(idxs), encLabel(ek))
			}
			platform := cspName
			if h.clusters != nil {
				platform = h.clusters[cspName]
			}
			if perPlatform[platform] == nil {
				perPlatform[platform] = make(map[int]bool)
			}
			for idx := range idxs {
				perPlatform[platform][idx] = true
			}
		}
		for platform, idxs := range perPlatform {
			if h.clusters != nil && len(idxs) > 1 {
				h.violate("placement", "platform %s holds %d distinct shares of chunk %s", platform, len(idxs), encLabel(ek))
			}
			if len(idxs) >= ref.T {
				h.violate("privacy", "platform %s holds %d shares of chunk %s — enough to reconstruct it (t=%d)",
					platform, len(idxs), encLabel(ek), ref.T)
			}
		}
	}
}

// encLabel renders an encoding key for violation messages.
func encLabel(ek string) string {
	id, class := metadata.SplitEncodingKey(ek)
	if class == "" {
		return short(id)
	}
	return short(id) + "(" + class + ")"
}

// checkStructuralDurability verifies at the object level that every
// referenced encoding still has all n share objects somewhere and at
// least t of them intact — i.e. the system never silently dropped below
// its declared fault tolerance, and neither deletion nor a lifecycle
// demotion ever removed shares that other versions still reference (a
// demoted object's hot encoding must survive as long as any version
// references it).
func (h *Harness) checkStructuralDurability(st *worldState) {
	for ek, ref := range st.chunkRefs {
		distinct := make(map[int]bool)
		for _, idxs := range st.presence[ek] {
			for idx := range idxs {
				distinct[idx] = true
			}
		}
		if len(distinct) < ref.N {
			h.violate("durability", "chunk %s: only %d of %d share objects exist", encLabel(ek), len(distinct), ref.N)
		}
		if _, known := st.chunkShares[ek]; known && len(st.intact[ek]) < ref.T {
			h.violate("durability", "chunk %s: only %d intact shares, need %d to decode", encLabel(ek), len(st.intact[ek]), ref.T)
		}
	}
}

// checkMetaReplication recomputes the expected bytes of every metadata
// share (the codec is deterministic and the coder's evaluation points are
// prefix-stable in n) and verifies each version stays recoverable from at
// least MetaT intact shares spread over the providers.
func (h *Harness) checkMetaReplication(tree *metadata.Tree, records []*metadata.FileMeta, st *worldState) {
	n := len(h.names)
	metaT := h.opts.MetaT
	if metaT > n {
		metaT = n
	}
	for _, m := range records {
		vid := m.VersionID()
		blob, err := metadata.Encode(m)
		if err != nil {
			h.violate("meta-replication", "version %s does not re-encode: %v", short(vid), err)
			continue
		}
		expected, err := h.coder.Encode(blob, metaT, n)
		if err != nil {
			h.violate("meta-replication", "version %s share recomputation failed: %v", short(vid), err)
			continue
		}
		intact := make(map[int]bool)
		present := make(map[int]bool)
		for _, cspName := range h.names {
			b := h.backends[cspName]
			for idx := 0; idx < n; idx++ {
				data, ok := b.PeekObject(h.clients[0].MetaShareObjectName(vid, idx))
				if !ok {
					continue
				}
				present[idx] = true
				if bytes.Equal(data, expected[idx].Data) {
					intact[idx] = true
				}
			}
		}
		if len(intact) < metaT {
			h.violate("meta-replication", "version %s: %d intact metadata shares (%d present), need %d",
				short(vid), len(intact), len(present), metaT)
		}
	}
}

// checkBehavioralDurability is the end-to-end read check: for every
// provider subset of the configured kill size, fail the subset, build a
// fresh client from nothing but the key and the accounts (the paper's
// recover()), and re-read every acknowledged write byte-for-byte.
func (h *Harness) checkBehavioralDurability(ctx context.Context) {
	kills := h.opts.N - h.opts.T
	if h.opts.CheckKills > 0 {
		kills = h.opts.CheckKills
	} else if h.opts.CheckKills < 0 {
		kills = 0
	}
	// Deduplicate the oracle: re-putting identical content acks the same
	// version node again.
	seen := make(map[string]bool)
	var writes []AckedWrite
	for _, aw := range h.acked {
		if !seen[aw.VersionID] {
			seen[aw.VersionID] = true
			writes = append(writes, aw)
		}
	}
	for si, subset := range combinations(h.names, kills) {
		for _, name := range subset {
			h.backends[name].SetAvailable(false)
		}
		insp, err := h.inspector(fmt.Sprintf("inspector-%d-%d", h.report.Checkpoints, si))
		if err != nil {
			h.violate("durability", "building recovery client failed: %v", err)
		} else {
			// Sync errors are tolerated here only because residue of failed
			// metadata uploads is unreadable by design; any acked version
			// the sync failed to absorb is caught by the reads below.
			_, _ = insp.Sync(ctx)
			insp.ChunkTable().Rebuild(insp.Tree().All())
			for _, aw := range writes {
				got, _, err := insp.GetVersion(ctx, aw.File, aw.VersionID)
				if err != nil {
					h.violate("durability", "with %v failed: %s version %s unreadable: %v",
						subset, aw.File, short(aw.VersionID), err)
					continue
				}
				if !bytes.Equal(got, aw.Data) {
					h.violate("durability", "with %v failed: %s version %s read back wrong bytes",
						subset, aw.File, short(aw.VersionID))
				}
			}
		}
		for _, name := range subset {
			h.backends[name].SetAvailable(true)
		}
	}
}

// combinations returns every size-k subset of names, in deterministic
// order. k == 0 yields the single empty subset (the all-up read check).
func combinations(names []string, k int) [][]string {
	if k <= 0 {
		return [][]string{nil}
	}
	if k > len(names) {
		k = len(names)
	}
	var out [][]string
	subset := make([]string, 0, k)
	var rec func(start int)
	rec = func(start int) {
		if len(subset) == k {
			out = append(out, append([]string(nil), subset...))
			return
		}
		for i := start; i <= len(names)-(k-len(subset)); i++ {
			subset = append(subset, names[i])
			rec(i + 1)
			subset = subset[:len(subset)-1]
		}
	}
	rec(0)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	a2 := append([]string(nil), a...)
	b2 := append([]string(nil), b...)
	sort.Strings(a2)
	sort.Strings(b2)
	for i := range a2 {
		if a2[i] != b2[i] {
			return false
		}
	}
	return true
}
