package harness

import (
	"bytes"
	"context"
	"math"
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/csp"
	"repro/internal/metadata"
)

// TestMultiClientOverlap is the cross-user dedup acceptance test: users
// with distinct keys concurrently upload datasets at scripted overlap
// ratios, and the oracles verify the dedup ratio tracks the script while
// every durability, privacy, placement, and refcount invariant holds.
func TestMultiClientOverlap(t *testing.T) {
	seed := baseSeed(t)
	cases := []struct {
		name  string
		users int
		ratio float64
	}{
		{"overlap-0", 2, 0},
		{"overlap-30", 3, 0.3},
		{"overlap-90", 2, 0.9},
	}
	for i, tc := range cases {
		tc := tc
		i := i
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			w, err := newOverlapWorld(OverlapOptions{
				Seed:    seed + int64(i)*271,
				Users:   tc.users,
				Overlap: tc.ratio,
			})
			if err != nil {
				t.Fatalf("newOverlapWorld: %v", err)
			}
			ctx := context.Background()
			if err := w.uploadAll(ctx); err != nil {
				t.Fatal(err)
			}
			rep := w.checkAll(ctx)
			t.Logf("users=%d overlap=%.0f%% uniqueChunks=%d totalChunks=%d casBytes=%d expected=%d single=%d ratio=%.3f hits=%d misses=%d saved=%d",
				tc.users, 100*tc.ratio, rep.UniqueChunks, rep.TotalChunks, rep.CASBytes,
				rep.ExpectedBytes, rep.SingleUser, rep.DedupRatio(), rep.DedupHits, rep.DedupMisses, rep.DedupSaved)
			for _, v := range rep.Violations {
				t.Errorf("[%s] %s", v.Invariant, v.Detail)
			}
			// The dedup ratio must track the script: a fraction `ratio` of
			// each user's bytes is stored once instead of `users` times.
			wantRatio := tc.ratio * float64(tc.users-1) / float64(tc.users)
			if got := rep.DedupRatio(); math.Abs(got-wantRatio) > 0.05 {
				t.Errorf("dedup ratio %.3f, want %.3f +- 0.05 (overlap script %.0f%%)", got, wantRatio, 100*tc.ratio)
			}
			if tc.ratio > 0 && rep.DedupHits == 0 {
				t.Errorf("no dedup hits recorded at %.0f%% overlap", 100*tc.ratio)
			}
		})
	}
}

// refWorld bundles the chaos test's direct backend access: raw RefStore
// handles for fabricating the provider-side state of crashed clients.
type refWorld struct {
	*overlapWorld
	stores map[string]csp.RefStore
}

func newRefWorld(t *testing.T, opts OverlapOptions) *refWorld {
	t.Helper()
	w, err := newOverlapWorld(opts)
	if err != nil {
		t.Fatalf("newOverlapWorld: %v", err)
	}
	rw := &refWorld{overlapWorld: w, stores: make(map[string]csp.RefStore)}
	for name, b := range w.backends {
		s := cloudsim.NewSimStore(b)
		if err := s.Authenticate(context.Background(), csp.Credentials{Token: "chaos"}); err != nil {
			t.Fatal(err)
		}
		rw.stores[name] = s
	}
	return rw
}

// fabricateOrphan reproduces what a client crash mid-upload leaves behind:
// share objects with the user's reference token on the providers, no
// metadata record anywhere. Returns the chunk's object names.
func (rw *refWorld) fabricateOrphan(t *testing.T, u int, data []byte) []string {
	t.Helper()
	id := metadata.HashData(data)
	shares, err := rw.conv.For(id).Encode(data, rw.opts.T, rw.opts.N)
	if err != nil {
		t.Fatal(err)
	}
	token := rw.users[u].RefToken()
	names := make([]string, rw.opts.N)
	for i := 0; i < rw.opts.N; i++ {
		names[i] = rw.users[0].ShareObjectName(id, i, rw.opts.T)
		provider := rw.names[i%len(rw.names)]
		if _, err := rw.stores[provider].PutRef(context.Background(), names[i], token, shares[i].Data); err != nil {
			t.Fatalf("fabricating orphan share on %s: %v", provider, err)
		}
	}
	return names
}

// objectHolders returns the providers physically holding an object.
func (rw *refWorld) objectHolders(name string) []string {
	var out []string
	for _, cspName := range rw.names {
		if _, ok := rw.backends[cspName].PeekObject(name); ok {
			out = append(out, cspName)
		}
	}
	return out
}

// tokensEverywhere returns the union of an object's token sets across
// providers (the chaos cases place each object on one provider only).
func (rw *refWorld) tokensEverywhere(name string) map[string]bool {
	out := make(map[string]bool)
	for _, cspName := range rw.names {
		for _, tok := range rw.backends[cspName].RefTokens(name) {
			out[tok] = true
		}
	}
	return out
}

// seqData builds deterministic single-chunk content (below the chunker's
// MinSize) distinct per salt.
func seqData(salt byte, size int) []byte {
	data := make([]byte, size)
	for i := range data {
		data[i] = salt ^ byte(i*7+13)
	}
	return data
}

// TestRefcountChaos drives the refcount GC protocol through its crash
// windows: a client dying mid-upload, a GC racing a concurrent upload of
// the same chunk by another user, and a provider outage splitting a GC in
// half. The invariant throughout: no share is lost while any user
// references it, and no share outlives its last reference once a
// full-view GC has run.
func TestRefcountChaos(t *testing.T) {
	t.Parallel()
	rw := newRefWorld(t, OverlapOptions{Seed: baseSeed(t), Users: 2, Files: 1, FileSize: 200})
	ctx := context.Background()
	u0, u1 := rw.users[0], rw.users[1]

	// --- Phase A: client crash mid-upload, replayed by GC. ---
	// u0 owns `live` (content X). u1 crashed mid-upload of the same X plus
	// private content Y: tokens landed, metadata never did.
	liveData := seqData(1, 200)
	if err := u0.Put(ctx, "live", liveData); err != nil {
		t.Fatal(err)
	}
	liveNames := rw.fabricateOrphan(t, 1, liveData) // u1's token joins u0's objects
	privNames := rw.fabricateOrphan(t, 1, seqData(2, 210))

	if _, err := u1.GC(ctx); err != nil {
		t.Fatal(err)
	}
	for _, name := range privNames {
		if holders := rw.objectHolders(name); len(holders) != 0 {
			t.Errorf("phase A: u1's private orphan %s survived its refcount draining (on %v)", name, holders)
		}
	}
	for _, name := range liveNames {
		if holders := rw.objectHolders(name); len(holders) == 0 {
			t.Errorf("phase A: shared share %s lost while u0 still references it", name)
		}
		toks := rw.tokensEverywhere(name)
		if !toks[u0.RefToken()] || toks[u1.RefToken()] {
			t.Errorf("phase A: %s tokens %v, want exactly u0's", name, toks)
		}
	}
	if got, _, err := u0.Get(ctx, "live"); err != nil || !bytes.Equal(got, liveData) {
		t.Fatalf("phase A: u0's live file after u1's GC replay: %v", err)
	}

	// --- Phase B: GC racing a concurrent upload of the same chunk. ---
	// u0 holds an orphaned copy of Z (a crashed upload); u1 uploads Z live
	// while u0's GC releases its token. Backend-atomic reference ops make
	// every interleaving safe: either u1 references the surviving object,
	// or it recreates the object after the delete.
	zData := seqData(3, 220)
	zNames := rw.fabricateOrphan(t, 0, zData)
	done := make(chan error, 2)
	go func() {
		err := u1.Put(ctx, "z-file", zData)
		done <- err
	}()
	go func() {
		_, err := u0.GC(ctx)
		done <- err
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got, _, err := u1.Get(ctx, "z-file"); err != nil || !bytes.Equal(got, zData) {
		t.Fatalf("phase B: u1's file after racing u0's GC: %v", err)
	}
	for _, name := range zNames {
		if toks := rw.tokensEverywhere(name); !toks[u1.RefToken()] {
			t.Errorf("phase B: %s lacks u1's token after its acknowledged upload", name)
		}
	}
	// A quiescent GC settles any interleaving-dependent leftovers: u0's
	// token must now be gone from Z (u0 references nothing of it).
	if _, err := u0.GC(ctx); err != nil {
		t.Fatal(err)
	}
	for _, name := range zNames {
		toks := rw.tokensEverywhere(name)
		if toks[u0.RefToken()] || !toks[u1.RefToken()] {
			t.Errorf("phase B: %s tokens %v after quiescent GC, want exactly u1's", name, toks)
		}
	}

	// --- Phase C: provider outage splits a GC in half. ---
	// An orphan of u0's sits on three providers; a previous GC died after
	// releasing the token on the first (its copy drained away), and now a
	// second provider is down. The next GC must refuse to sweep off the
	// partial view; the one after the restart finishes the job.
	wData := seqData(4, 230)
	wNames := rw.fabricateOrphan(t, 0, wData)
	firstHolder := rw.objectHolders(wNames[0])[0]
	if removed, err := rw.stores[firstHolder].DelRef(ctx, wNames[0], u0.RefToken()); err != nil || !removed {
		t.Fatalf("simulating half-finished GC: removed=%v err=%v", removed, err)
	}
	downProvider := rw.objectHolders(wNames[1])[0]
	rw.backends[downProvider].SetAvailable(false)
	if _, err := u0.GC(ctx); err != nil {
		t.Fatal(err)
	}
	for _, name := range wNames[1:] {
		if len(rw.objectHolders(name)) == 0 {
			t.Errorf("phase C: %s released off a partial view (provider %s was down)", name, downProvider)
		}
	}
	rw.backends[downProvider].SetAvailable(true)
	u0.ProbeFailed(ctx)
	if _, err := u0.GC(ctx); err != nil {
		t.Fatal(err)
	}
	for _, name := range wNames {
		if holders := rw.objectHolders(name); len(holders) != 0 {
			t.Errorf("phase C: orphan %s survived the full-view replay (on %v)", name, holders)
		}
	}
	if got, _, err := u0.Get(ctx, "live"); err != nil || !bytes.Equal(got, liveData) {
		t.Fatalf("phase C: u0's live file after all sweeps: %v", err)
	}
	if got, _, err := u1.Get(ctx, "z-file"); err != nil || !bytes.Equal(got, zData) {
		t.Fatalf("phase C: u1's file after all sweeps: %v", err)
	}

	// Global closing invariant: nothing survives with zero references.
	rw.checkNoZeroRefObjects()
	for _, v := range rw.report.Violations {
		t.Errorf("[%s] %s", v.Invariant, v.Detail)
	}
}
