package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/policy"
)

// baseSeed returns the seed for this test process. The CI matrix and the
// acceptance gate vary it: CYRUS_HARNESS_SEED=n go test ./internal/harness
func baseSeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("CYRUS_HARNESS_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CYRUS_HARNESS_SEED %q: %v", s, err)
		}
		return n
	}
	return 7
}

// runScenario executes one configured run and fails the test on any
// invariant violation. When a run fails and CYRUS_FLIGHT_OUT names a
// directory, the run's flight-recorder dumps are written there — CI
// uploads them as artifacts so anomalies stay diagnosable post-hoc.
func runScenario(t *testing.T, opts Options) *Report {
	t.Helper()
	h, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep := h.Run(context.Background())
	t.Logf("seed=%d %s", opts.Seed, rep)
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			t.Errorf("[%s] %s", v.Invariant, v.Detail)
		}
		writeFlightDumps(t, rep)
	}
	if rep.Acked == 0 {
		t.Errorf("no Put was ever acknowledged — the scenario exercised nothing")
	}
	return rep
}

// writeFlightDumps exports a failed run's flight dumps to the directory
// named by CYRUS_FLIGHT_OUT (no-op when unset).
func writeFlightDumps(t *testing.T, rep *Report) {
	t.Helper()
	dir := os.Getenv("CYRUS_FLIGHT_OUT")
	if dir == "" || len(rep.FlightDumps) == 0 {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("flight dumps: mkdir %s: %v", dir, err)
		return
	}
	for _, d := range rep.FlightDumps {
		data, err := json.MarshalIndent(d, "", "  ")
		if err != nil {
			continue
		}
		name := fmt.Sprintf("%s-flight-%d.json", sanitizeName(t.Name()), d.Seq)
		if err := os.WriteFile(filepath.Join(dir, name), append(data, '\n'), 0o644); err != nil {
			t.Logf("flight dumps: write %s: %v", name, err)
			continue
		}
		t.Logf("flight dump written to %s", filepath.Join(dir, name))
	}
}

// sanitizeName flattens a subtest path into a file-name-safe token.
func sanitizeName(name string) string {
	return strings.NewReplacer("/", "_", " ", "_").Replace(name)
}

// TestScenarios is the chaos suite: every named fault pattern must leave
// all system-wide invariants intact.
func TestScenarios(t *testing.T) {
	seed := baseSeed(t)
	scenarios := []struct {
		name string
		opts Options
	}{
		{
			// No faults at all: the invariants hold trivially, and the
			// checker's own bookkeeping (oracle, share recomputation,
			// object classification) is validated against a clean world.
			name: "baseline-no-faults",
			opts: Options{},
		},
		{
			// One provider suffers a long hard outage and comes back.
			name: "single-crash-restart",
			opts: Options{
				Schedule: Schedule{
					{At: 20, Act: Crash, CSP: "cspb"},
					{At: 80, Act: Restart, CSP: "cspb"},
					{At: 80, Act: Checkpoint},
					{At: 100, Act: Crash, CSP: "cspd"},
					{At: 140, Act: Restart, CSP: "cspd"},
				},
			},
		},
		{
			// Every provider takes a turn being down; at most one is down
			// at a time, so all operations should keep succeeding.
			name: "rolling-outages",
			opts: Options{
				Schedule: Schedule{
					{At: 10, Act: Crash, CSP: "cspa"}, {At: 35, Act: Restart, CSP: "cspa"},
					{At: 40, Act: Crash, CSP: "cspb"}, {At: 65, Act: Restart, CSP: "cspb"},
					{At: 70, Act: Crash, CSP: "cspc"}, {At: 95, Act: Restart, CSP: "cspc"},
					{At: 100, Act: Crash, CSP: "cspd"}, {At: 125, Act: Restart, CSP: "cspd"},
					{At: 130, Act: Crash, CSP: "cspe"}, {At: 155, Act: Restart, CSP: "cspe"},
				},
			},
		},
		{
			// Short transient fault bursts on individual providers.
			name: "transient-faults",
			opts: Options{
				Schedule: Schedule{
					{At: 15, Act: FailNext, CSP: "cspa", Count: 3},
					{At: 40, Act: FailNext, CSP: "cspc", Count: 5},
					{At: 70, Act: FailNext, CSP: "cspe", Count: 2},
					{At: 90, Act: FailNext, CSP: "cspb", Count: 4},
					{At: 120, Act: FailNext, CSP: "cspd", Count: 3},
				},
			},
		},
		{
			// One provider runs out of space mid-run; uploads must fail
			// over without ever double-placing shares, and the capacity
			// comes back later (the provider kept its stored bytes).
			name: "capacity-exhaustion",
			opts: Options{
				Schedule: Schedule{
					{At: 30, Act: SetCapacity, CSP: "cspc", Bytes: 16 << 10},
					{At: 120, Act: SetCapacity, CSP: "cspc", Bytes: 0},
				},
			},
		},
		{
			// Metadata shares rot on a single provider. Each record keeps
			// every other replica, so reads and recovery must correct
			// through the damage (and log it), never serve bad metadata.
			name: "metadata-corruption",
			opts: Options{
				Schedule: Schedule{
					{At: 50, Act: CorruptMeta, CSP: "cspa", Count: 4},
					{At: 100, Act: CorruptMeta, CSP: "cspa", Count: 4},
				},
			},
		},
		{
			// Chunk shares rot. n=4, t=2 gives the unique-decoding budget
			// to correct one bad share per chunk; CheckKills −1 keeps the
			// durability sweep from stacking a failure on top of the
			// corruption (which would exceed e < (k−t+1)/2).
			name: "share-corruption",
			opts: Options{
				N:          4,
				CheckKills: -1,
				Schedule: Schedule{
					{At: 60, Act: CorruptShares, CSP: "cspb", Count: 3},
					{At: 110, Act: CorruptShares, CSP: "cspd", Count: 3},
				},
			},
		},
		{
			// Providers grouped two per platform: the placement constraint
			// tightens to one share per *cluster*, and the checker audits
			// exactly that.
			name: "clustered-platforms",
			opts: Options{
				Providers: 6,
				Clustered: true,
				Schedule: Schedule{
					{At: 25, Act: Crash, CSP: "cspe"},
					{At: 75, Act: Restart, CSP: "cspe"},
				},
			},
		},
		{
			// BlindSync makes every provider's next operation fail, so the
			// next writer uploads against a stale tree — manufacturing the
			// paper's divergent-edit conflicts. All replicas must still
			// converge and agree on the conflicts; Resolve ops settle them.
			name: "concurrent-divergence",
			opts: Options{
				Clients: 3,
				Files:   3,
				Schedule: Schedule{
					{At: 15, Act: BlindSync}, {At: 35, Act: BlindSync},
					{At: 55, Act: BlindSync}, {At: 75, Act: BlindSync},
					{At: 95, Act: BlindSync}, {At: 115, Act: BlindSync},
					{At: 135, Act: BlindSync},
				},
			},
		},
		{
			// A provider is gracefully retired; later downloads lazily
			// migrate its shares (draining the old copies), then the
			// provider rejoins. A second retirement exercises repeated
			// migration — the case where a past holder must never be
			// handed a second share of the same chunk.
			name: "churn-remove-reinstate",
			opts: Options{
				Schedule: Schedule{
					{At: 30, Act: RemoveCSP, CSP: "cspa", Client: 0},
					{At: 90, Act: Checkpoint},
					{At: 90, Act: ReinstateCSP, CSP: "cspa", Client: 1},
					{At: 110, Act: RemoveCSP, CSP: "cspc", Client: 1},
				},
			},
		},
		{
			// Convergent dedup mode under crash-and-restart chaos plus
			// blind-sync windows: content-addressed shares and refcounted
			// GC must uphold every invariant the legacy namespace does.
			// The workload's random GC ops land inside and outside the
			// outage windows, exercising the partial-view sweep gate.
			name: "dedup-crash-gc",
			opts: Options{
				Dedup:   true,
				Clients: 3,
				Schedule: Schedule{
					{At: 20, Act: Crash, CSP: "cspb"},
					{At: 45, Act: BlindSync},
					{At: 60, Act: Restart, CSP: "cspb"},
					{At: 80, Act: Checkpoint},
					{At: 100, Act: Crash, CSP: "cspd"},
					{At: 130, Act: Restart, CSP: "cspd"},
				},
			},
		},
		{
			// Sharded metadata plane under CSP churn: three clients route
			// metadata through a 3-of-6 hashring with the version-aware
			// cache on, while providers crash, are retired, and rejoin
			// mid-run. Oracles: per-shard meta-replication (every record
			// keeps >= MetaT intact shares on its shard), stale-ring
			// readability (fresh inspectors start on the pre-churn ring and
			// must still resolve everything), cache coherence (no client
			// serves a superseded version from cache), and garbage-freedom
			// (re-placed shares are accounted, nothing referenced is lost).
			name: "meta-shard-churn",
			opts: Options{
				Clients:          3,
				Providers:        6,
				MetaShards:       3,
				MetaCacheEntries: 64,
				Schedule: Schedule{
					{At: 25, Act: RemoveCSP, CSP: "cspb", Client: 0},
					{At: 45, Act: Crash, CSP: "cspe"},
					{At: 70, Act: Restart, CSP: "cspe"},
					{At: 80, Act: Checkpoint},
					{At: 80, Act: ReinstateCSP, CSP: "cspb", Client: 1},
					{At: 105, Act: RemoveCSP, CSP: "cspd", Client: 2},
					{At: 130, Act: FailNext, CSP: "cspa", Count: 3},
				},
			},
		},
		{
			// Storage classes under degradation: hot objects (2-of-3 on
			// cspa-c) are demoted by the lifecycle migrator to a cold class
			// (3-of-5 preferring cspd-f) while that cold subset crashes and
			// throws transient faults and the workload keeps reading. The
			// Demote runs are asynchronous under virtual time, so reads
			// genuinely interleave with in-flight re-encodes. Oracles: byte-
			// identical reads mid- and post-migration, per-class durability
			// and t-privacy (every encoding keeps its own n shares and t
			// threshold), source encodings survive demotion (no copy deleted
			// before the cold placement reached quorum — old versions still
			// reference them), and no torn class transitions (every version's
			// chunks carry one class). DemoteAfter of 1ns makes every idle
			// object eligible the moment a Demote step fires.
			name: "class-degrade-migrate",
			opts: Options{
				Virtual:   true,
				Providers: 6,
				Ops:       90,
				Classes: []policy.Class{
					{Name: "hot", Tier: policy.TierHot, T: 2, N: 3,
						CSPs:        []string{"cspa", "cspb", "cspc"},
						DemoteAfter: time.Nanosecond, DemoteTo: "cold"},
					{Name: "cold", Tier: policy.TierCold, T: 3, N: 5,
						CSPs: []string{"cspd", "cspe", "cspf"}},
				},
				DefaultClass: "hot",
				Schedule: Schedule{
					{At: 30, Act: Demote, Client: 0},
					{At: 32, Act: Crash, CSP: "cspd"},
					{At: 45, Act: FailNext, CSP: "cspe", Count: 3},
					{At: 50, Act: Demote, Client: 1},
					{At: 60, Act: Restart, CSP: "cspd"},
					{At: 62, Act: Checkpoint},
					{At: 75, Act: Demote, Client: 0},
				},
			},
		},
		{
			// Virtual time: each client reaches the providers over its own
			// netsim links; mid-run one provider's links collapse to 5% of
			// their bandwidth, then recover.
			name: "slow-links-netsim",
			opts: Options{
				Virtual: true,
				Ops:     90,
				Schedule: Schedule{
					{At: 20, Act: SlowLink, CSP: "cspb", Factor: 0.05},
					{At: 60, Act: RestoreLink, CSP: "cspb"},
					{At: 70, Act: Crash, CSP: "cspd"},
				},
			},
		},
		{
			// Streaming Put/Get chaos: the windowed pipeline under a crawling
			// link and a CSP killed mid-run, so in-flight streams must fail
			// over or abort cleanly. Larger files give each stream many
			// chunks, landing the faults mid-stream; the oracles are the same
			// as the batch plane's.
			name: "streaming-slow-link-crash",
			opts: Options{
				Virtual:   true,
				Streaming: true,
				Ops:       90,
				MaxBytes:  24 * 1024,
				Schedule: Schedule{
					{At: 15, Act: SlowLink, CSP: "cspb", Factor: 0.05},
					{At: 40, Act: Crash, CSP: "cspd"},
					{At: 55, Act: RestoreLink, CSP: "cspb"},
					{At: 70, Act: Restart, CSP: "cspd"},
				},
			},
		},
	}
	for i, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			sc.opts.Seed = seed + int64(i)*1000
			runScenario(t, sc.opts)
		})
	}
}

// TestSeededPlacementBugCaught proves the checker has teeth: a share
// deliberately copied onto a provider that already holds one (the state a
// reverted placement guard would produce) must trip the placement and
// privacy invariants.
func TestSeededPlacementBugCaught(t *testing.T) {
	t.Parallel()
	h, err := New(Options{Seed: baseSeed(t), Ops: 40, BreakPlacement: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep := h.Run(context.Background())
	t.Logf("%s", rep)
	var placement, privacy bool
	for _, v := range rep.Violations {
		placement = placement || v.Invariant == "placement"
		privacy = privacy || v.Invariant == "privacy"
	}
	if !placement || !privacy {
		t.Fatalf("seeded placement bug not caught (placement=%v privacy=%v):\n%s", placement, privacy, rep)
	}
}

// TestSeededShareLossCaught proves the durability check has teeth: shares
// silently destroyed beyond the n−t budget must be reported.
func TestSeededShareLossCaught(t *testing.T) {
	t.Parallel()
	h, err := New(Options{Seed: baseSeed(t), Ops: 40, BreakDurability: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep := h.Run(context.Background())
	t.Logf("%s", rep)
	for _, v := range rep.Violations {
		if v.Invariant == "durability" {
			return
		}
	}
	t.Fatalf("seeded share loss not caught:\n%s", rep)
}

// TestDeterminism re-runs a faulty scenario with the same seed and checks
// the acknowledged-version sequence is identical — the property that makes
// any harness failure reproducible from its seed.
func TestDeterminism(t *testing.T) {
	t.Parallel()
	opts := Options{
		Seed: baseSeed(t),
		Ops:  80,
		Schedule: Schedule{
			{At: 10, Act: Crash, CSP: "cspb"},
			{At: 50, Act: Restart, CSP: "cspb"},
		},
	}
	run := func() *Report {
		h, err := New(opts)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return h.Run(context.Background())
	}
	a, b := run(), run()
	if len(a.AckedVIDs) != len(b.AckedVIDs) {
		t.Fatalf("ack counts differ: %d vs %d", len(a.AckedVIDs), len(b.AckedVIDs))
	}
	for i := range a.AckedVIDs {
		if a.AckedVIDs[i] != b.AckedVIDs[i] {
			t.Fatalf("ack %d differs: %s vs %s", i, a.AckedVIDs[i], b.AckedVIDs[i])
		}
	}
}

// TestSoak is the long-running mode: several independent worlds with
// randomized (but seed-derived) fault schedules layered over a larger
// workload. Skipped under -short; CI runs the short suite, the soak runs
// locally or in scheduled jobs.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak mode disabled with -short")
	}
	seed := baseSeed(t)
	for round := 0; round < 3; round++ {
		round := round
		t.Run(strconv.Itoa(round), func(t *testing.T) {
			t.Parallel()
			opts := Options{
				Seed:      seed + int64(round)*7919,
				Clients:   3,
				Providers: 6,
				Ops:       400,
				Files:     8,
				Schedule:  soakSchedule(seed+int64(round), 400),
			}
			runScenario(t, opts)
		})
	}
}

// soakSchedule derives a random-but-reproducible fault schedule: rolling
// crash windows, transient fault bursts, and a capacity dip, plus a
// mid-run checkpoint.
func soakSchedule(seed int64, ops int) Schedule {
	names := []string{"cspa", "cspb", "cspc", "cspd", "cspe", "cspf"}
	var sch Schedule
	// Derive positions from the seed without pulling in the harness RNG:
	// a simple LCG is plenty and keeps the schedule independent of the
	// workload stream.
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	for i := 0; i < 4; i++ {
		at := next(ops - 40)
		cspName := names[next(len(names))]
		sch = append(sch,
			Step{At: at, Act: Crash, CSP: cspName},
			Step{At: at + 20 + next(20), Act: Restart, CSP: cspName},
		)
	}
	for i := 0; i < 5; i++ {
		sch = append(sch, Step{At: next(ops), Act: FailNext, CSP: names[next(len(names))], Count: 1 + next(4)})
	}
	dip := names[next(len(names))]
	at := next(ops / 2)
	sch = append(sch,
		Step{At: at, Act: SetCapacity, CSP: dip, Bytes: 32 << 10},
		Step{At: at + ops/4, Act: SetCapacity, CSP: dip, Bytes: 0},
		Step{At: ops / 2, Act: Checkpoint},
	)
	return sch
}
