package harness

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/obs"
)

// TestMetricsSnapshot runs one scenario and checks the report carries a
// non-empty aggregate metrics snapshot with the core metric families. When
// CYRUS_METRICS_OUT is set the snapshot is written there as JSON — CI
// uploads it as a per-run artifact so scenario metrics are comparable
// across commits.
func TestMetricsSnapshot(t *testing.T) {
	rep := runScenario(t, Options{
		Seed: baseSeed(t),
		Schedule: Schedule{
			{At: 30, Act: Crash, CSP: "cspb"},
			{At: 90, Act: Restart, CSP: "cspb"},
		},
	})
	if rep.Metrics == nil || len(rep.Metrics.Metrics) == 0 {
		t.Fatal("report carries no metrics snapshot")
	}
	s := *rep.Metrics

	if p, ok := s.Find(obs.MetricOpsTotal, map[string]string{"op": "put", "result": "ok"}); !ok || int(p.Value) != rep.Acked {
		t.Errorf("ops_total{op=put,result=ok} = %+v (found=%v), want %d (acked puts)", p, ok, rep.Acked)
	}
	for _, name := range []string{
		obs.MetricOpDuration,
		obs.MetricCSPRequests,
		obs.MetricEventsTotal,
		obs.MetricTransferBytes,
		obs.MetricSpanDuration,
	} {
		if _, ok := s.Find(name, nil); !ok {
			t.Errorf("snapshot missing family %s", name)
		}
	}
	// The crash left failed contacts behind.
	if p, ok := s.Find(obs.MetricCSPRequests, map[string]string{"csp": "cspb", "result": "error"}); !ok || p.Value == 0 {
		t.Errorf("csp_requests_total{csp=cspb,result=error} = %+v (found=%v), want > 0 after crash window", p, ok)
	}

	if out := os.Getenv("CYRUS_METRICS_OUT"); out != "" {
		data, err := json.MarshalIndent(struct {
			Seed    int64        `json:"seed"`
			Acked   int          `json:"acked"`
			Ops     int          `json:"ops"`
			Metrics obs.Snapshot `json:"metrics"`
		}{Seed: baseSeed(t), Acked: rep.Acked, Ops: rep.Ops, Metrics: s}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("metrics snapshot written to %s (%d bytes)", out, len(data))
	}
}

// TestMetricsSnapshotDeterministic: two runs of the same scenario produce
// identical counter totals. Which provider serves a given download can vary
// with goroutine scheduling (selector tie-breaks on estimated bandwidth), so
// counters are aggregated across the csp label before comparing; per-op and
// per-event-type totals must match exactly. Pipeline stall counts are
// excluded entirely: whether the streaming scan loop blocks on a full
// window is a race between the scanner and the transfer goroutines, not a
// function of the seeded schedule. The SLO, flight-trigger, and
// load-sample counters are likewise excluded: they classify real-time
// latencies and real-time sample spacing, which goroutine scheduling (not
// the seed) determines in a non-virtual run.
func TestMetricsSnapshotDeterministic(t *testing.T) {
	opts := Options{Seed: baseSeed(t), Ops: 60}
	a := runScenario(t, opts)
	b := runScenario(t, opts)
	excluded := map[string]bool{
		obs.MetricPipelineStalls: true,
		obs.MetricSLOOK:          true,
		obs.MetricSLOBreach:      true,
		obs.MetricFlightTriggers: true,
		obs.MetricLoadSamples:    true,
	}
	counters := func(s *obs.Snapshot) map[string]float64 {
		out := map[string]float64{}
		for _, p := range s.Metrics {
			if p.Type != "counter" || excluded[p.Name] {
				continue
			}
			key := p.Name
			for _, k := range []string{"op", "result", "type", "dir"} {
				if v, ok := p.Labels[k]; ok {
					key += "|" + k + "=" + v
				}
			}
			out[key] += p.Value
		}
		return out
	}
	ca, cb := counters(a.Metrics), counters(b.Metrics)
	if len(ca) != len(cb) {
		t.Fatalf("counter sets differ: %d vs %d", len(ca), len(cb))
	}
	for k, v := range ca {
		if cb[k] != v {
			t.Errorf("counter %s: %v vs %v across identical runs", k, v, cb[k])
		}
	}
}
