// Package harness is a seedable, deterministic multi-client chaos
// simulation for the whole CYRUS stack. It drives N concurrent
// core.Clients against shared cloudsim backends while a scripted fault
// schedule crashes and restarts providers, injects transient faults,
// exhausts capacity, corrupts stored shares, and throttles links under
// netsim virtual time. At every quiescent point it audits the system's
// global invariants by direct inspection of provider state and the
// clients' version trees:
//
//   - durability: every acknowledged write stays readable, byte-exact,
//     under any failure subset of up to n−t providers;
//   - placement: no provider (and, when clustering is on, no platform)
//     physically holds more than one share of a chunk;
//   - t-privacy: no platform holds enough shares to reconstruct a chunk;
//   - metadata replication: every version's record stays recoverable from
//     at least MetaT intact metadata shares;
//   - garbage-freedom: every object stored at any provider is accounted
//     for (a share of a referenced chunk, residue of a failed upload, a
//     metadata share of a known version, or the CSP status list), and
//     deletion never removes data that other versions still reference;
//   - convergence: after a full sync all clients agree on the version
//     tree, on every file's head, and on the detected conflicts.
//
// The driver is deterministic: the operation mix and the fault schedule
// derive only from the seed and the scripted Schedule, so a failing run
// reproduces from its seed. (Operation outcomes feed back into later
// driver choices only through client state, which is itself a function of
// the same seed and schedule.)
//
// The harness is the regression gate for the scaling work tracked in
// ROADMAP.md: any refactor or performance change must keep every named
// scenario in harness_test.go green.
package harness

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/chunker"
	"repro/internal/cloudsim"
	"repro/internal/core"
	"repro/internal/csp"
	"repro/internal/erasure"
	"repro/internal/lifecycle"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/transfer"
	"repro/internal/vclock"
)

// Options configures one simulation run. Zero values take the documented
// defaults.
type Options struct {
	// Seed drives every random choice of the run. Runs with equal Options
	// are reproducible.
	Seed int64

	Clients   int // concurrent clients (default 2)
	Providers int // simulated CSPs (default 5)
	T         int // chunk privacy level (default 2)
	N         int // shares per chunk (default 3)
	MetaT     int // metadata privacy level (default 2)

	Ops      int // workload length (default 160)
	Files    int // distinct file names the workload touches (default 6)
	MaxBytes int // maximum file size per Put (default 4096)

	// Clustered groups providers two per platform cluster and enables the
	// at-most-one-share-per-platform placement constraint.
	Clustered bool

	// Virtual runs the clients under netsim virtual time, each on its own
	// node with per-provider links; the SlowLink/RestoreLink schedule
	// actions only work in this mode.
	Virtual bool

	// Schedule is the scripted fault sequence, applied by op index.
	Schedule Schedule

	// Transfer bounds every client's transfer engine (per-CSP and global
	// in-flight caps, retry policy). Zero values take core's defaults.
	Transfer transfer.Tunables

	// CheckKills controls the failure sweep of the durability check:
	// 0 (the default) fails every provider subset of size N−T, the
	// system's tolerance; −1 disables simulated failures (the fresh-client
	// recovery check still runs with everything up — scenarios that
	// deliberately corrupt chunk shares use this, since a corruption plus
	// a failure exceeds the correcting decoder's bound); k > 0 fails every
	// subset of exactly k providers.
	CheckKills int

	// BreakPlacement seeds a deliberate bug: after the first acknowledged
	// Put, one share of its first chunk is copied onto a provider that
	// already holds another share of the same chunk — the state a reverted
	// placement guard would produce. The placement/privacy invariants must
	// flag it (used by the harness's own self-test).
	BreakPlacement bool

	// BreakDurability seeds a deliberate bug: after the first acknowledged
	// Put, two share objects of its first chunk are silently removed from
	// the providers' durable state. The durability invariant must flag it.
	BreakDurability bool

	// Streaming routes the workload's Puts and Gets through the streaming
	// pipeline (PutReader fed via ragged reader fragments, GetTo into a
	// buffer) instead of the whole-buffer wrappers. The durability and
	// read-guarantee oracles are unchanged: both planes must satisfy the
	// same invariants under the same faults.
	Streaming bool

	// Dedup runs every client in convergent dedup mode (content-addressed
	// share objects, refcounted GC) with a run-wide deployment secret. All
	// invariants are checked unchanged — shared shares must not weaken
	// durability, placement, or t-privacy — and the expected share bytes
	// are recomputed with the content-derived coders.
	Dedup bool

	// MetaShards, when positive, enables hashring-sharded metadata
	// placement on every client (core.Config.MetaShards). The
	// meta-replication check is shard-aware for free: metadata shares are
	// prefix-stable in n, so a shard subset's shares byte-match the full
	// placement's prefix.
	MetaShards int

	// MetaCacheEntries / MetaCacheBytes enable the version-aware metadata
	// cache on every client. The checkpoint adds a cache-coherence oracle:
	// after quiesce, no client may hold a cached head that differs from its
	// tree's live head (i.e. no client would serve a superseded version
	// from cache). TreeRetention is deliberately NOT a harness knob: the
	// durability oracle re-reads every acknowledged historical version,
	// which compaction legitimately prunes.
	MetaCacheEntries int
	MetaCacheBytes   int64

	// Recorder, when set, tunes the shared observer's flight recorder
	// (trigger thresholds, ring capacity, dump retention). nil keeps the
	// observer defaults — the recorder itself is always attached.
	Recorder *obs.RecorderConfig

	// Classes, ClassRules, and DefaultClass configure storage classes on
	// every client (core.Config pass-through). Class scenarios must give
	// each class explicit T and N so the invariant checker can recompute
	// the expected share bytes of every encoding, and schedule Demote
	// steps to drive the lifecycle migrator. The oracles then tighten:
	// per-class durability and t-privacy, per-version class consistency
	// (no torn transitions), and source-encoding survival across
	// demotions.
	Classes      []policy.Class
	ClassRules   []policy.Rule
	DefaultClass string

	// FailureThreshold overrides every client's provider-failure estimator
	// window (core default 24h). Chaos scenarios that want csp.down
	// transitions — and the flight-recorder triggers hanging off them —
	// within a few virtual seconds must lower it.
	FailureThreshold time.Duration

	// SLOObjectives overrides per-op latency objectives on the shared
	// observer (netsim latencies sit far below the WAN defaults).
	SLOObjectives map[string]time.Duration
}

func (o Options) withDefaults() Options {
	if o.Clients == 0 {
		o.Clients = 2
	}
	if o.Providers == 0 {
		o.Providers = 5
	}
	if o.T == 0 {
		o.T = 2
	}
	if o.N == 0 {
		o.N = 3
	}
	if o.MetaT == 0 {
		o.MetaT = 2
	}
	if o.Ops == 0 {
		o.Ops = 160
	}
	if o.Files == 0 {
		o.Files = 6
	}
	if o.MaxBytes == 0 {
		o.MaxBytes = 4096
	}
	return o
}

// chunkingConfig is shared by every client and by the invariant checker
// (which re-chunks acknowledged contents to recompute expected share
// bytes).
var chunkingConfig = chunker.Config{AverageSize: 1024, MinSize: 256, MaxSize: 4096, Window: 48}

// sharedKey is the user key all clients of a run share.
const sharedKey = "harness-shared-user-key"

// harnessDedupSecret is the deployment secret of dedup-mode runs.
const harnessDedupSecret = "harness-deployment-secret"

// AckedWrite is one acknowledged Put: the durability oracle.
type AckedWrite struct {
	File      string
	VersionID string
	Client    string
	Data      []byte
}

// Violation is one invariant breach found by a checkpoint.
type Violation struct {
	Invariant string // durability | placement | privacy | meta-replication | garbage | convergence | read | cache
	Detail    string
}

// Report summarizes a run.
type Report struct {
	Ops         int
	Acked       int
	FailedPuts  int
	Reads       int
	Versions    int // version nodes in the converged tree
	Chunks      int // unique referenced chunks
	Checkpoints int
	AckedVIDs   []string // acknowledged version IDs in ack order
	Violations  []Violation

	// Metrics is the aggregate observability snapshot of all workload
	// clients, captured when the workload ends and before the checkpoint's
	// inspector traffic (inspectors carry no observer). Two runs of the same
	// scenario produce comparable snapshots.
	Metrics *obs.Snapshot

	// FlightDumps are the flight-recorder dumps retained at the end of the
	// run: anomaly-triggered dumps from the workload plus one dump per
	// invariant violation (violate() force-dumps so the event context of a
	// breach is preserved for post-hoc diagnosis).
	FlightDumps []obs.FlightDump
}

// String renders a one-line summary plus any violations.
func (r *Report) String() string {
	s := fmt.Sprintf("ops=%d acked=%d failedPuts=%d reads=%d versions=%d chunks=%d checkpoints=%d violations=%d",
		r.Ops, r.Acked, r.FailedPuts, r.Reads, r.Versions, r.Chunks, r.Checkpoints, len(r.Violations))
	for _, v := range r.Violations {
		s += fmt.Sprintf("\n  [%s] %s", v.Invariant, v.Detail)
	}
	return s
}

// Harness owns the simulated world of one run.
type Harness struct {
	opts     Options
	rng      *rand.Rand
	net      *netsim.Network // nil unless Virtual
	backends map[string]*cloudsim.Backend
	names    []string          // provider names, sorted
	clusters map[string]string // provider -> platform; nil unless Clustered
	clients  []*core.Client
	chunk    *chunker.Chunker
	coder    *erasure.Coder
	conv     *erasure.ConvergentCoder // nil unless Dedup
	obs      *obs.Observer            // shared by all workload clients

	acked      []AckedWrite
	ackedByVID map[string][]byte
	lastAcked  map[string][]byte // file -> last acknowledged content
	failedPuts [][]byte          // contents of failed Puts (expected residue)
	corrupted  map[string]bool   // csp + "/" + object: harness-injected rot
	sabotaged  bool              // Break* injection already performed

	migrators map[int]*lifecycle.Migrator // lazily built per client index
	lifeGroup vclock.Group                // joins in-flight Demote runs

	pending []Step // schedule sorted by At
	report  Report
}

// defaultLink is the virtual-time link every client gets to every provider
// until a SlowLink step degrades it.
var defaultLink = netsim.LinkConfig{RTT: 20 * time.Millisecond, UpBps: 4 << 20, DownBps: 8 << 20}

// New builds the simulated world: backends, clients, and (when Virtual)
// the netsim network.
func New(opts Options) (*Harness, error) {
	opts = opts.withDefaults()
	h := &Harness{
		opts:       opts,
		rng:        rand.New(rand.NewSource(opts.Seed)),
		backends:   make(map[string]*cloudsim.Backend),
		ackedByVID: make(map[string][]byte),
		lastAcked:  make(map[string][]byte),
		corrupted:  make(map[string]bool),
		coder:      erasure.NewCoder(sharedKey),
		migrators:  make(map[int]*lifecycle.Migrator),
	}
	oo := obs.Options{SLOObjectives: opts.SLOObjectives}
	if opts.Recorder != nil {
		oo.Recorder = *opts.Recorder
	}
	h.obs = obs.NewObserverWith(oo)
	if opts.Dedup {
		h.conv = erasure.NewConvergentCoder(harnessDedupSecret)
	}
	ch, err := chunker.New(chunkingConfig)
	if err != nil {
		return nil, err
	}
	h.chunk = ch

	if opts.Virtual {
		h.net = netsim.New(time.Date(2015, 4, 21, 0, 0, 0, 0, time.UTC))
	}
	for i := 0; i < opts.Providers; i++ {
		name := fmt.Sprintf("csp%c", 'a'+i)
		identity := csp.NameKeyed
		if i%2 == 1 {
			identity = csp.IDKeyed
		}
		h.backends[name] = cloudsim.NewBackend(name, identity, 0)
		h.names = append(h.names, name)
	}
	sort.Strings(h.names)
	if opts.Clustered {
		h.clusters = make(map[string]string, len(h.names))
		for i, name := range h.names {
			h.clusters[name] = fmt.Sprintf("platform%d", i/2)
		}
	}

	// Client construction authenticates every store, which in virtual mode
	// charges the network — so it must run inside the scheduler.
	var buildErr error
	build := func() {
		for i := 0; i < opts.Clients; i++ {
			id := fmt.Sprintf("client%d", i)
			var node string
			if h.net != nil {
				node = id
				h.net.AddNode(node, netsim.NodeConfig{})
				for _, cspName := range h.names {
					h.net.SetLink(node, cspName, defaultLink)
				}
			}
			c, err := h.buildClient(id, node, h.obs)
			if err != nil {
				buildErr = err
				return
			}
			h.clients = append(h.clients, c)
		}
	}
	if h.net != nil {
		h.net.Run(build)
	} else {
		build()
	}
	if buildErr != nil {
		return nil, buildErr
	}

	h.pending = append(h.pending, opts.Schedule...)
	for i := range h.pending {
		if h.pending[i].At > opts.Ops {
			h.pending[i].At = opts.Ops
		}
	}
	sort.SliceStable(h.pending, func(i, j int) bool { return h.pending[i].At < h.pending[j].At })
	return h, nil
}

// buildClient assembles one authenticated client. With node == "" the
// client's stores bypass the network (instant transfers, real clock);
// otherwise operations are charged to that netsim node's links. o is the
// observer to instrument with (nil disables instrumentation — inspector
// clients stay out of the workload's metrics).
func (h *Harness) buildClient(id, node string, o *obs.Observer) (*core.Client, error) {
	cfg := core.Config{
		ClientID:         id,
		Key:              sharedKey,
		T:                h.opts.T,
		N:                h.opts.N,
		MetaT:            h.opts.MetaT,
		MetaShards:       h.opts.MetaShards,
		MetaCacheEntries: h.opts.MetaCacheEntries,
		MetaCacheBytes:   h.opts.MetaCacheBytes,
		Chunking:         chunkingConfig,
		ClusterOf:        h.clusters,
		Obs:              o,
		Transfer:         h.opts.Transfer,
		FailureThreshold: h.opts.FailureThreshold,
		Classes:          h.opts.Classes,
		ClassRules:       h.opts.ClassRules,
		DefaultClass:     h.opts.DefaultClass,
	}
	if h.opts.Dedup {
		cfg.DedupMode = true
		cfg.DedupSecret = harnessDedupSecret
	}
	if node != "" {
		cfg.Runtime = h.net
	}
	var stores []csp.Store
	for _, name := range h.names {
		var sopts []cloudsim.Option
		if node != "" {
			sopts = append(sopts,
				cloudsim.WithTransport(cloudsim.NodeTransport{Net: h.net, Node: node}),
				cloudsim.WithClock(h.net.Now))
		}
		s := cloudsim.NewSimStore(h.backends[name], sopts...)
		if err := s.Authenticate(context.Background(), csp.Credentials{Token: "harness"}); err != nil {
			return nil, err
		}
		stores = append(stores, s)
	}
	return core.New(cfg, stores)
}

// inspector builds a fresh transport-less client used by the invariant
// checks — the paper's recover() device: only the key and the provider
// accounts, no local state.
func (h *Harness) inspector(id string) (*core.Client, error) {
	return h.buildClient(id, "", nil)
}

// now returns the run's notion of wall-clock time.
func (h *Harness) now() time.Time {
	if h.net != nil {
		return h.net.Now()
	}
	return time.Now()
}

// runtime returns the run's vclock.Runtime: the netsim scheduler when
// Virtual, the real clock otherwise.
func (h *Harness) runtime() vclock.Runtime {
	if h.net != nil {
		return h.net
	}
	return vclock.Real()
}

// runLifecycle fires one asynchronous scan-and-drain of client #i's
// lifecycle migrator (the Demote schedule action). The workload keeps
// running while the demotions are in flight — under netsim virtual time
// the interleaving with reads and faults is deterministic — and every
// checkpoint joins outstanding runs before auditing, so the checker never
// races a half-finished re-encode. The migrator only ever touches the
// client (which is safe for concurrent use); it must not touch the
// harness's oracle state from its goroutine.
func (h *Harness) runLifecycle(ctx context.Context, client int) {
	if client < 0 || client >= len(h.clients) {
		return
	}
	m := h.migrators[client]
	if m == nil {
		var err error
		m, err = lifecycle.New(lifecycle.Config{
			Client:  h.clients[client],
			Workers: 1,
			Runtime: h.runtime(),
		})
		if err != nil {
			h.violate("read", "building lifecycle migrator for client %d: %v", client, err)
			return
		}
		h.migrators[client] = m
	}
	if h.lifeGroup == nil {
		h.lifeGroup = h.runtime().NewGroup()
	}
	h.lifeGroup.Add(1)
	h.runtime().Go(func() {
		defer h.lifeGroup.Done()
		if _, err := m.Scan(ctx); err != nil {
			return
		}
		m.Run(ctx)
	})
}

// joinLifecycle blocks until every in-flight Demote run has finished.
func (h *Harness) joinLifecycle() {
	if h.lifeGroup != nil {
		h.lifeGroup.Wait()
	}
}

// Run executes the workload under the schedule, finishes with a quiescent
// checkpoint, and returns the report. It may be called once.
func (h *Harness) Run(ctx context.Context) *Report {
	body := func() {
		next := 0
		for i := 0; i < h.opts.Ops; i++ {
			next = h.applySchedule(ctx, i, next)
			h.step(ctx, i)
			h.report.Ops++
		}
		h.applySchedule(ctx, h.opts.Ops, next)
		h.joinLifecycle()
		snap := h.obs.Registry().Snapshot()
		h.report.Metrics = &snap
		h.checkpoint(ctx)
		h.report.FlightDumps = h.obs.FlightDumps()
	}
	if h.net != nil {
		h.net.Run(body)
	} else {
		body()
	}
	return &h.report
}

// violate records one invariant breach and force-dumps the flight
// recorder, so the event context leading up to the breach survives for
// post-hoc diagnosis (CI uploads the dumps as artifacts on failure).
func (h *Harness) violate(invariant, format string, args ...any) {
	detail := fmt.Sprintf(format, args...)
	h.report.Violations = append(h.report.Violations, Violation{Invariant: invariant, Detail: detail})
	h.obs.FlightDump(obs.TriggerInvariant, invariant+": "+detail)
}

// randBytes draws n deterministic pseudo-random bytes.
func (h *Harness) randBytes(n int) []byte {
	b := make([]byte, n)
	h.rng.Read(b)
	return b
}

func short(id string) string {
	if len(id) > 8 {
		return id[:8]
	}
	return id
}
