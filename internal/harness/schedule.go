package harness

import (
	"context"
	"strings"

	"repro/internal/core"
	"repro/internal/metadata"
)

// Action is one kind of scripted fault.
type Action int

const (
	// Crash makes a provider unavailable (hard outage) until Restart.
	Crash Action = iota
	// Restart brings a crashed provider back with its durable state intact.
	Restart
	// FailNext makes the provider's next Count operations fail (transient
	// faults; Count defaults to 1).
	FailNext
	// BlindSync makes the next operation at every provider fail — a
	// metadata listing issued right after is guaranteed to see nothing,
	// which is how concurrent-divergence scenarios force stale trees and
	// therefore genuine version conflicts.
	BlindSync
	// SetCapacity caps the provider's durable bytes at Bytes (0 removes
	// the cap). Shrinking below current use does not delete data; it makes
	// subsequent uploads fail.
	SetCapacity
	// CorruptMeta flips one byte in Count random metadata-share objects on
	// the provider. The harness logs each corrupted object so the
	// invariant checks can tell injected rot from genuine violations.
	CorruptMeta
	// CorruptShares does the same to Count random chunk-share objects.
	CorruptShares
	// SlowLink scales every client's link to the provider (or to all
	// providers when CSP is empty) to Factor of the default bandwidth.
	// Virtual mode only.
	SlowLink
	// RestoreLink resets the affected links to the default configuration.
	RestoreLink
	// RemoveCSP has client #Client gracefully retire the provider from the
	// active set (publishing a new CSP status list).
	RemoveCSP
	// ReinstateCSP has client #Client re-add the provider.
	ReinstateCSP
	// Checkpoint quiesces the system mid-run and checks every invariant.
	Checkpoint
	// Demote fires an asynchronous scan-and-drain of client #Client's
	// lifecycle migrator: every idle object whose class carries a
	// DemoteAfter/DemoteTo rule is re-encoded into the colder class while
	// the workload keeps running. Requires class-configured Options.
	Demote
)

// Step is one scheduled fault: Act is applied just before op index At.
type Step struct {
	At     int
	Act    Action
	CSP    string
	Count  int
	Bytes  int64
	Factor float64
	Client int
}

// Schedule is a scripted fault sequence.
type Schedule []Step

// applySchedule applies every pending step scheduled at op index i and
// returns the new cursor into the sorted step list.
func (h *Harness) applySchedule(ctx context.Context, i, next int) int {
	for next < len(h.pending) && h.pending[next].At <= i {
		h.applyStep(ctx, h.pending[next])
		next++
	}
	return next
}

func (h *Harness) applyStep(ctx context.Context, s Step) {
	b := h.backends[s.CSP]
	switch s.Act {
	case Crash:
		b.SetAvailable(false)
	case Restart:
		b.SetAvailable(true)
	case FailNext:
		b.FailNext(max(1, s.Count))
	case BlindSync:
		for _, name := range h.names {
			h.backends[name].FailNext(1)
		}
	case SetCapacity:
		b.SetCapacity(s.Bytes)
	case CorruptMeta:
		h.corruptObjects(s.CSP, max(1, s.Count), isMetaShare)
	case CorruptShares:
		h.corruptObjects(s.CSP, max(1, s.Count), isChunkShare)
	case SlowLink:
		h.scaleLinks(s.CSP, s.Factor)
	case RestoreLink:
		h.scaleLinks(s.CSP, 1)
	case RemoveCSP:
		_ = h.clients[s.Client].RemoveCSP(ctx, s.CSP)
	case ReinstateCSP:
		_ = h.clients[s.Client].ReinstateCSP(ctx, s.CSP)
	case Checkpoint:
		h.checkpoint(ctx)
	case Demote:
		h.runLifecycle(ctx, s.Client)
	}
}

func isMetaShare(obj string) bool {
	_, _, ok := core.ParseMetaShareObjectName(obj)
	return ok
}

func isChunkShare(obj string) bool {
	return strings.HasPrefix(obj, core.SharePrefix) || core.IsCASShareObjectName(obj)
}

func isCSPList(obj string) bool {
	return strings.HasPrefix(obj, metadata.MetaPrefix+"csplist.")
}

// corruptObjects flips one byte in count objects matching the filter,
// chosen deterministically from the run's PRNG, and logs them so the
// checker can excuse the resulting byte mismatches.
func (h *Harness) corruptObjects(cspName string, count int, match func(string) bool) {
	b := h.backends[cspName]
	var candidates []string
	for _, name := range b.ObjectNames("") {
		if match(name) {
			candidates = append(candidates, name)
		}
	}
	if len(candidates) == 0 {
		return
	}
	for _, pi := range h.rng.Perm(len(candidates)) {
		if count == 0 {
			break
		}
		count--
		obj := candidates[pi]
		off := h.rng.Intn(1 << 16)
		b.MutateObject(obj, func(data []byte) []byte {
			if len(data) == 0 {
				return nil
			}
			data[off%len(data)] ^= 0x5a
			return data
		})
		h.corrupted[cspName+"/"+obj] = true
	}
}

// scaleLinks sets every client's link to the named provider (or all
// providers when cspName is empty) to factor × the default bandwidth.
func (h *Harness) scaleLinks(cspName string, factor float64) {
	if h.net == nil || factor <= 0 {
		return
	}
	for i := range h.clients {
		node := h.clients[i].ID()
		for _, name := range h.names {
			if cspName != "" && name != cspName {
				continue
			}
			cfg := defaultLink
			cfg.UpBps *= factor
			cfg.DownBps *= factor
			h.net.SetLink(node, name, cfg)
		}
	}
}
