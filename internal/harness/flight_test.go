package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/transfer"
)

// TestFlightRecorderCapturesAnomaly is the acceptance scenario for the
// flight recorder: a virtual-time chaos run where one provider crashes
// (forcing retries and, once the lowered failure threshold elapses, a
// csp.down transition) and another's link collapses to a fraction of a
// percent of its bandwidth (forcing multi-hundred-millisecond transfers
// against a tens-of-milliseconds EWMA, which trips the latency-anomaly
// trigger and launches hedged downloads). The recorder must produce a
// latency-anomaly dump whose ring reconstructs the triggering operation's
// full event chain — span open, transfer attempts, and the triggering
// span close, stitched by trace ID — alongside the retry, hedge, and CSP
// down-transition events of the surrounding window.
//
// Run under -race in CI, this doubles as the concurrency proof for the
// trigger path: both workload clients feed one recorder from concurrent
// transfer goroutines while dumps snapshot it.
func TestFlightRecorderCapturesAnomaly(t *testing.T) {
	rep := runScenario(t, Options{
		Seed:    baseSeed(t),
		Virtual: true,
		Clients: 2,
		Ops:     150,
		// The estimator's 24h default would never mark a provider down
		// inside a run; one virtual second makes the crash window produce
		// the csp.down transition the recorder must capture.
		FailureThreshold: time.Second,
		// Slow uploads retrain the provider's latency EWMA before any
		// download can hedge against it, so the default multiple (3x the
		// expectation) never fires once the link is degraded. Hedging at
		// half the expectation keeps launching backups against the slow
		// link; the 50ms engine floor still suppresses hedges at healthy
		// netsim latencies.
		Transfer: transfer.Tunables{HedgeMultiple: 0.5},
		Recorder: &obs.RecorderConfig{
			// Netsim ops finish in tens of milliseconds, so the anomaly
			// trigger needs a floor and multiple matched to that scale.
			TriggerMultiple:   2,
			TriggerMinSamples: 6,
			TriggerFloor:      50 * time.Millisecond,
			Capacity:          8192,
			MaxDumps:          64,
		},
		Schedule: Schedule{
			{At: 40, Act: Crash, CSP: "cspb"},
			{At: 65, Act: SlowLink, CSP: "cspc", Factor: 0.001},
			{At: 110, Act: Restart, CSP: "cspb"},
			{At: 120, Act: RestoreLink, CSP: "cspc"},
		},
	})

	if len(rep.FlightDumps) == 0 {
		t.Fatal("chaos run produced no flight dumps")
	}

	// The induced latency anomaly must have fired the EWMA trigger.
	var latency *obs.FlightDump
	for i := range rep.FlightDumps {
		if strings.HasPrefix(rep.FlightDumps[i].Reason, obs.TriggerLatency) {
			latency = &rep.FlightDumps[i]
			break
		}
	}
	if latency == nil {
		reasons := make([]string, 0, len(rep.FlightDumps))
		for _, d := range rep.FlightDumps {
			reasons = append(reasons, d.Reason)
		}
		t.Fatalf("no latency-anomaly dump; dump reasons: %v", reasons)
	}
	if latency.Trigger == nil || latency.Trigger.Kind != obs.FlightSpanClose {
		t.Fatalf("latency dump trigger = %+v, want the closing op span", latency.Trigger)
	}
	if latency.Trace == 0 {
		t.Fatal("latency dump carries no trace ID")
	}

	// The triggering op's event chain must be reconstructable from the
	// dump by trace ID: the operation span opened, provider attempts ran
	// under it, and the anomalous close ends the chain, all in Seq order.
	var chain []obs.FlightEvent
	for _, ev := range latency.Events {
		if ev.Trace == latency.Trace {
			chain = append(chain, ev)
		}
	}
	kinds := map[string]int{}
	lastSeq := uint64(0)
	for _, ev := range chain {
		if ev.Seq <= lastSeq {
			t.Errorf("trace chain out of order: seq %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		kinds[ev.Kind]++
	}
	for _, want := range []string{obs.FlightSpanOpen, obs.FlightAttemptStart, obs.FlightAttemptEnd, obs.FlightSpanClose} {
		if kinds[want] == 0 {
			t.Errorf("trigger trace %d chain has no %s event (chain kinds: %v)", latency.Trace, want, kinds)
		}
	}
	if n := len(chain); n > 0 && chain[n-1].Seq != latency.Trigger.Seq {
		t.Errorf("chain does not end at the triggering close: last seq %d, trigger seq %d", chain[n-1].Seq, latency.Trigger.Seq)
	}

	// The chaos window's mechanics must all be on the record somewhere in
	// the retained dumps: the crash forced retries and a down transition,
	// the slow link forced a hedge launch.
	saw := map[string]bool{}
	for _, d := range rep.FlightDumps {
		for _, ev := range d.Events {
			saw[ev.Kind] = true
		}
	}
	for _, want := range []string{obs.FlightRetry, obs.FlightHedgeLaunch, obs.FlightCSPDown} {
		if !saw[want] {
			t.Errorf("no %s event in any retained dump", want)
		}
	}

	// The trigger counter agrees with the retained dumps.
	if rep.Metrics != nil {
		if p, ok := rep.Metrics.Find(obs.MetricFlightTriggers, map[string]string{"reason": obs.TriggerLatency}); !ok || p.Value == 0 {
			// Dumps can outnumber the end-of-workload snapshot only if the
			// trigger fired during the checkpoint; the latency trigger
			// fires from workload spans, so it must be visible here.
			t.Errorf("cyrus_flight_triggers_total{reason=%s} = %+v (found=%v), want > 0", obs.TriggerLatency, p, ok)
		}
	}
}
