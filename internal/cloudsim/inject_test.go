package cloudsim

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/csp"
)

// The state-dump and fault-injection surface (ObjectNames, PeekObject,
// MutateObject, InjectObject, RemoveObject, SetCapacity) backs the chaos
// harness; these tests pin its contract: direct durable-state access,
// no gating, no counter side effects.

func TestObjectNamesAndPeekBypassGating(t *testing.T) {
	t.Parallel()
	b := NewBackend("s3", csp.NameKeyed, 0)
	s := authedStore(t, b)
	ctx := context.Background()
	for _, name := range []string{"meta-2", "meta-1", "chunk-x"} {
		if err := s.Upload(ctx, name, []byte(name)); err != nil {
			t.Fatal(err)
		}
	}
	b.SetAvailable(false)

	names := b.ObjectNames("meta-")
	if len(names) != 2 || names[0] != "meta-1" || names[1] != "meta-2" {
		t.Fatalf("ObjectNames(meta-) = %v, want sorted [meta-1 meta-2]", names)
	}
	data, ok := b.PeekObject("chunk-x")
	if !ok || !bytes.Equal(data, []byte("chunk-x")) {
		t.Fatalf("PeekObject = %q, %v", data, ok)
	}
	if _, ok := b.PeekObject("absent"); ok {
		t.Fatal("PeekObject(absent) reported existence")
	}
	downloads := b.Stats().Downloads
	if downloads != 0 {
		t.Fatalf("peeking counted %d downloads", downloads)
	}
}

func TestMutateObjectInjectsRot(t *testing.T) {
	t.Parallel()
	b := NewBackend("s3", csp.NameKeyed, 0)
	s := authedStore(t, b)
	ctx := context.Background()
	if err := s.Upload(ctx, "obj", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if !b.MutateObject("obj", func(d []byte) []byte { d[1] ^= 0xff; return d }) {
		t.Fatal("MutateObject reported missing object")
	}
	got, err := s.Download(ctx, "obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2 ^ 0xff, 3}) {
		t.Fatalf("mutation not visible to downloads: %v", got)
	}
	// Returning nil keeps the object unchanged.
	if b.MutateObject("obj", func(d []byte) []byte { return nil }) {
		t.Fatal("nil-returning mutation reported a change")
	}
	if b.MutateObject("absent", func(d []byte) []byte { return d }) {
		t.Fatal("MutateObject invented an object")
	}
}

func TestMutateObjectAdjustsUsedBytes(t *testing.T) {
	t.Parallel()
	b := NewBackend("s3", csp.NameKeyed, 10)
	s := authedStore(t, b)
	ctx := context.Background()
	if err := s.Upload(ctx, "obj", make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	// Growing the object through mutation must count against capacity.
	b.MutateObject("obj", func(d []byte) []byte { return make([]byte, 9) })
	if err := s.Upload(ctx, "other", make([]byte, 2)); !errors.Is(err, csp.ErrOverCapacity) {
		t.Fatalf("upload after growth: %v, want ErrOverCapacity", err)
	}
}

func TestInjectAndRemoveObject(t *testing.T) {
	t.Parallel()
	b := NewBackend("s3", csp.IDKeyed, 3) // capacity smaller than the injected object
	s := authedStore(t, b)
	ctx := context.Background()

	b.InjectObject("planted", []byte("oversized"), time.Unix(100, 0))
	got, err := s.Download(ctx, "planted")
	if err != nil || string(got) != "oversized" {
		t.Fatalf("Download(planted) = %q, %v", got, err)
	}

	if !b.RemoveObject("planted") {
		t.Fatal("RemoveObject reported missing object")
	}
	if b.RemoveObject("planted") {
		t.Fatal("double remove reported success")
	}
	if _, err := s.Download(ctx, "planted"); !errors.Is(err, csp.ErrNotFound) {
		t.Fatalf("download after removal: %v, want ErrNotFound", err)
	}
}

func TestSetCapacityShrinkKeepsData(t *testing.T) {
	t.Parallel()
	b := NewBackend("s3", csp.NameKeyed, 0)
	s := authedStore(t, b)
	ctx := context.Background()
	if err := s.Upload(ctx, "kept", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}

	b.SetCapacity(16)
	if got := b.Capacity(); got != 16 {
		t.Fatalf("Capacity = %d, want 16", got)
	}
	// Existing data survives the quota cut; new uploads bounce.
	if _, err := s.Download(ctx, "kept"); err != nil {
		t.Fatalf("existing object lost after shrink: %v", err)
	}
	if err := s.Upload(ctx, "new", make([]byte, 8)); !errors.Is(err, csp.ErrOverCapacity) {
		t.Fatalf("upload after shrink: %v, want ErrOverCapacity", err)
	}

	b.SetCapacity(0)
	if err := s.Upload(ctx, "new", make([]byte, 8)); err != nil {
		t.Fatalf("upload after lifting cap: %v", err)
	}
}
