package cloudsim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/csp"
	"repro/internal/netsim"
)

// Transport models the network cost of provider operations. A nil
// Transport means instant operations (pure-functional tests).
type Transport interface {
	// RoundTrip charges one control round trip to the provider.
	RoundTrip(cspName string) error
	// Move charges a data transfer of the given size and direction.
	Move(cspName string, dir netsim.Direction, bytes int64) error
}

// NodeTransport charges operations against a netsim node's links — the
// transport used in all latency experiments.
type NodeTransport struct {
	Net  *netsim.Network
	Node string
}

// RoundTrip implements Transport.
func (t NodeTransport) RoundTrip(cspName string) error {
	return t.Net.RoundTrip(t.Node, cspName)
}

// Move implements Transport.
func (t NodeTransport) Move(cspName string, dir netsim.Direction, bytes int64) error {
	return t.Net.Transfer(t.Node, cspName, dir, bytes)
}

// SimStore is one client's view of a simulated provider: shared Backend
// state plus the client's own Transport and session. It implements
// csp.Store.
type SimStore struct {
	backend   *Backend
	transport Transport
	clock     func() time.Time

	mu            sync.Mutex
	authenticated bool
}

// Option configures a SimStore.
type Option func(*SimStore)

// WithTransport charges the store's operations to a transport.
func WithTransport(t Transport) Option {
	return func(s *SimStore) { s.transport = t }
}

// WithClock sets the time source for object modification stamps (virtual
// time under netsim).
func WithClock(now func() time.Time) Option {
	return func(s *SimStore) { s.clock = now }
}

// NewSimStore wraps a backend for one client.
func NewSimStore(b *Backend, opts ...Option) *SimStore {
	s := &SimStore{backend: b, clock: time.Now}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Backend exposes the shared state (for tests and fault injection).
func (s *SimStore) Backend() *Backend { return s.backend }

// Name implements csp.Store.
func (s *SimStore) Name() string { return s.backend.name }

// Authenticate implements csp.Store. The simulation accepts any non-empty
// token, modeling the paper's use of each provider's existing auth.
func (s *SimStore) Authenticate(ctx context.Context, creds csp.Credentials) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if creds.Token == "" {
		return fmt.Errorf("%w: empty token for %s", csp.ErrUnauthorized, s.backend.name)
	}
	if err := s.charge(0, netsim.Up, true); err != nil {
		return err
	}
	s.mu.Lock()
	s.authenticated = true
	s.mu.Unlock()
	return nil
}

func (s *SimStore) session(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	ok := s.authenticated
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", csp.ErrUnauthorized, s.backend.name)
	}
	return nil
}

// charge applies transport costs: one RTT per request plus the payload.
func (s *SimStore) charge(bytes int64, dir netsim.Direction, rttOnly bool) error {
	if s.transport == nil {
		return nil
	}
	if err := s.transport.RoundTrip(s.backend.name); err != nil {
		return err
	}
	if rttOnly || bytes == 0 {
		return nil
	}
	return s.transport.Move(s.backend.name, dir, bytes)
}

// List implements csp.Store.
func (s *SimStore) List(ctx context.Context, prefix string) ([]csp.ObjectInfo, error) {
	if err := s.session(ctx); err != nil {
		return nil, err
	}
	if err := s.charge(0, netsim.Down, true); err != nil {
		return nil, err
	}
	return s.backend.list(prefix)
}

// Upload implements csp.Store.
func (s *SimStore) Upload(ctx context.Context, name string, data []byte) error {
	if err := s.session(ctx); err != nil {
		return err
	}
	// Admission first (capacity/availability), then the transfer cost:
	// a rejected upload costs only the control round trip.
	if err := s.backend.upload(name, data, s.clock()); err != nil {
		_ = s.charge(0, netsim.Up, true)
		return err
	}
	return s.charge(int64(len(data)), netsim.Up, false)
}

// Download implements csp.Store.
func (s *SimStore) Download(ctx context.Context, name string) ([]byte, error) {
	if err := s.session(ctx); err != nil {
		return nil, err
	}
	data, err := s.backend.download(name)
	if err != nil {
		_ = s.charge(0, netsim.Down, true)
		return nil, err
	}
	if err := s.charge(int64(len(data)), netsim.Down, false); err != nil {
		return nil, err
	}
	return data, nil
}

// DownloadBatch implements csp.BatchDownloader: many objects for one
// control round trip plus the summed payload transfer. Missing objects are
// omitted from the result; availability failures abort the whole batch
// (the provider, not an object, is unreachable).
func (s *SimStore) DownloadBatch(ctx context.Context, names []string) (map[string][]byte, error) {
	if err := s.session(ctx); err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(names))
	var total int64
	for _, name := range names {
		data, err := s.backend.download(name)
		if err != nil {
			if errors.Is(err, csp.ErrNotFound) {
				continue
			}
			_ = s.charge(0, netsim.Down, true)
			return nil, err
		}
		out[name] = data
		total += int64(len(data))
	}
	if err := s.charge(total, netsim.Down, false); err != nil {
		return nil, err
	}
	return out, nil
}

// Delete implements csp.Store.
func (s *SimStore) Delete(ctx context.Context, name string) error {
	if err := s.session(ctx); err != nil {
		return err
	}
	if err := s.charge(0, netsim.Up, true); err != nil {
		return err
	}
	return s.backend.delete(name)
}

// PutRef implements csp.RefStore. A dedup hit (object already present)
// costs only the control round trip; only a created object pays the
// payload transfer.
func (s *SimStore) PutRef(ctx context.Context, name, ref string, data []byte) (bool, error) {
	if err := s.session(ctx); err != nil {
		return false, err
	}
	created, err := s.backend.putRef(name, ref, data, s.clock())
	if err != nil || !created {
		cerr := s.charge(0, netsim.Up, true)
		if err == nil {
			err = cerr
		}
		return created, err
	}
	return true, s.charge(int64(len(data)), netsim.Up, false)
}

// AddRef implements csp.RefStore: the batched existence probe of the dedup
// upload path — one RTT, no payload.
func (s *SimStore) AddRef(ctx context.Context, name, ref string) error {
	if err := s.session(ctx); err != nil {
		return err
	}
	if err := s.charge(0, netsim.Up, true); err != nil {
		return err
	}
	return s.backend.addRef(name, ref)
}

// DelRef implements csp.RefStore.
func (s *SimStore) DelRef(ctx context.Context, name, ref string) (bool, error) {
	if err := s.session(ctx); err != nil {
		return false, err
	}
	if err := s.charge(0, netsim.Up, true); err != nil {
		return false, err
	}
	return s.backend.delRef(name, ref)
}

// Refs implements csp.RefStore.
func (s *SimStore) Refs(ctx context.Context, name string) ([]string, error) {
	if err := s.session(ctx); err != nil {
		return nil, err
	}
	if err := s.charge(0, netsim.Down, true); err != nil {
		return nil, err
	}
	return s.backend.refList(name)
}

var (
	_ csp.Store           = (*SimStore)(nil)
	_ csp.RefStore        = (*SimStore)(nil)
	_ csp.BatchDownloader = (*SimStore)(nil)
)
