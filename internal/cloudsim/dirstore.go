package cloudsim

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/csp"
)

// DirStore is a provider backed by a local directory: each object is a
// file. It gives cmd/cyrusctl and integration tests a durable provider
// with real I/O while remaining fully offline. Object names are encoded to
// stay filesystem-safe.
type DirStore struct {
	name string
	root string

	mu            sync.Mutex
	authenticated bool
}

// NewDirStore creates (if necessary) and opens a directory-backed provider.
func NewDirStore(name, root string) (*DirStore, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("cloudsim: create %s root: %w", name, err)
	}
	return &DirStore{name: name, root: root}, nil
}

// Name implements csp.Store.
func (d *DirStore) Name() string { return d.name }

// Authenticate implements csp.Store.
func (d *DirStore) Authenticate(ctx context.Context, creds csp.Credentials) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if creds.Token == "" {
		return fmt.Errorf("%w: empty token for %s", csp.ErrUnauthorized, d.name)
	}
	d.mu.Lock()
	d.authenticated = true
	d.mu.Unlock()
	return nil
}

func (d *DirStore) session(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	d.mu.Lock()
	ok := d.authenticated
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", csp.ErrUnauthorized, d.name)
	}
	return nil
}

// filePrefix marks encoded object files; anything else in the root (temp
// files, stray dirs) is ignored by List.
const filePrefix = "f-"

// encodeName makes an object name filesystem-safe: "%" is escaped first so
// decoding is unambiguous, path separators cannot escape the root, and the
// "f-" prefix rules out "." / ".." and temp-file collisions.
func encodeName(name string) string {
	r := strings.NewReplacer("%", "%25", "/", "%2F", "\\", "%5C")
	return filePrefix + r.Replace(name)
}

// decodeName reverses encodeName; ok is false for files List should skip.
func decodeName(enc string) (string, bool) {
	if !strings.HasPrefix(enc, filePrefix) {
		return "", false
	}
	r := strings.NewReplacer("%2F", "/", "%5C", "\\", "%25", "%")
	return r.Replace(enc[len(filePrefix):]), true
}

// List implements csp.Store.
func (d *DirStore) List(ctx context.Context, prefix string) ([]csp.ObjectInfo, error) {
	if err := d.session(ctx); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(d.root)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", csp.ErrUnavailable, d.name, err)
	}
	var out []csp.ObjectInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name, ok := decodeName(e.Name())
		if !ok || !strings.HasPrefix(name, prefix) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // raced with a delete
		}
		out = append(out, csp.ObjectInfo{Name: name, Size: info.Size(), Modified: info.ModTime()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Upload implements csp.Store (name-keyed semantics: overwrite). The write
// goes through a temp file + rename so concurrent readers never observe a
// torn object.
func (d *DirStore) Upload(ctx context.Context, name string, data []byte) error {
	_, err := d.UploadFrom(ctx, name, bytes.NewReader(data))
	return err
}

// UploadFrom implements csp.StreamUploader: the object body is copied
// incrementally from r into a temp file and published with one atomic
// rename. A reader error (including a crashed or aborted upload) removes
// the temp file, so a torn object is never visible to List or Download —
// temp files carry no "f-" prefix and are invisible to List even if the
// process dies between write and rename.
func (d *DirStore) UploadFrom(ctx context.Context, name string, r io.Reader) (int64, error) {
	if err := d.session(ctx); err != nil {
		return 0, err
	}
	dst := filepath.Join(d.root, encodeName(name))
	tmp, err := os.CreateTemp(d.root, ".upload-*")
	if err != nil {
		return 0, fmt.Errorf("%w: %s: %v", csp.ErrUnavailable, d.name, err)
	}
	tmpName := tmp.Name()
	n, err := io.Copy(tmp, r)
	if err != nil {
		tmp.Close()
		os.Remove(tmpName)
		// Propagate the copy error as-is (a reader abort must stay
		// branchable by the caller; a local write fault is already wrapped
		// by the os layer).
		return n, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return n, fmt.Errorf("%w: %s: %v", csp.ErrUnavailable, d.name, err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		os.Remove(tmpName)
		return n, fmt.Errorf("%w: %s: %v", csp.ErrUnavailable, d.name, err)
	}
	if err := os.Rename(tmpName, dst); err != nil {
		os.Remove(tmpName)
		return n, fmt.Errorf("%w: %s: %v", csp.ErrUnavailable, d.name, err)
	}
	return n, nil
}

// Download implements csp.Store.
func (d *DirStore) Download(ctx context.Context, name string) ([]byte, error) {
	if err := d.session(ctx); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(d.root, encodeName(name)))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s has no %q", csp.ErrNotFound, d.name, name)
		}
		return nil, fmt.Errorf("%w: %s: %v", csp.ErrUnavailable, d.name, err)
	}
	return data, nil
}

// DownloadTo implements csp.StreamDownloader: object bytes are copied to w
// without buffering the whole object. Renames are atomic, so an open file
// keeps serving the version it opened even if overwritten concurrently.
func (d *DirStore) DownloadTo(ctx context.Context, name string, w io.Writer) (int64, error) {
	if err := d.session(ctx); err != nil {
		return 0, err
	}
	f, err := os.Open(filepath.Join(d.root, encodeName(name)))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, fmt.Errorf("%w: %s has no %q", csp.ErrNotFound, d.name, name)
		}
		return 0, fmt.Errorf("%w: %s: %v", csp.ErrUnavailable, d.name, err)
	}
	defer f.Close()
	n, err := io.Copy(w, f)
	if err != nil {
		return n, err
	}
	return n, nil
}

// Delete implements csp.Store.
func (d *DirStore) Delete(ctx context.Context, name string) error {
	if err := d.session(ctx); err != nil {
		return err
	}
	err := os.Remove(filepath.Join(d.root, encodeName(name)))
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("%w: %s has no %q", csp.ErrNotFound, d.name, name)
	}
	if err != nil {
		return fmt.Errorf("%w: %s: %v", csp.ErrUnavailable, d.name, err)
	}
	return nil
}

var (
	_ csp.Store            = (*DirStore)(nil)
	_ csp.StreamUploader   = (*DirStore)(nil)
	_ csp.StreamDownloader = (*DirStore)(nil)
)
