// Package cloudsim provides CYRUS's cloud-storage-provider implementations
// for offline use: an in-memory simulated provider (SimStore) that
// reproduces the API quirks of commercial CSPs, and a filesystem-backed
// provider (DirStore) for the CLI and integration tests.
//
// A Backend holds the provider's durable state (objects, capacity,
// availability) and is shared by every client; each client wraps it in a
// SimStore bound to that client's transport (its netsim node, or nothing
// for instant transfers). This mirrors reality: one Dropbox account, many
// devices, each with its own network path.
package cloudsim

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/csp"
)

// Backend is the durable state of one simulated provider.
type Backend struct {
	name     string
	identity csp.ObjectIdentity

	mu        sync.Mutex
	objects   map[string][]version       // name -> versions (id-keyed keeps all)
	refs      map[string]map[string]bool // name -> reference tokens (dedup)
	used      int64
	capacity  int64 // 0 = unlimited
	available bool
	failNext  int // fail the next N operations (fault injection)

	// op counters for assertions and the Figure-18 share-distribution
	// experiment.
	uploads, downloads, lists, deletes int64
	bytesIn, bytesOut                  int64
}

type version struct {
	data     []byte
	modified time.Time
}

// NewBackend creates a provider with the given object-identity semantics.
// capacity of 0 means unlimited.
func NewBackend(name string, identity csp.ObjectIdentity, capacity int64) *Backend {
	return &Backend{
		name:      name,
		identity:  identity,
		objects:   make(map[string][]version),
		refs:      make(map[string]map[string]bool),
		capacity:  capacity,
		available: true,
	}
}

// Name returns the provider name.
func (b *Backend) Name() string { return b.name }

// Identity returns the provider's object identity model.
func (b *Backend) Identity() csp.ObjectIdentity { return b.identity }

// SetAvailable flips the provider's availability; unavailable providers
// fail every call with csp.ErrUnavailable (long outages, paper §5.5).
func (b *Backend) SetAvailable(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.available = ok
}

// Available reports current availability.
func (b *Backend) Available() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.available
}

// FailNext makes the next n operations fail with csp.ErrUnavailable, then
// recover — transient fault injection.
func (b *Backend) FailNext(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failNext = n
}

// SetCapacity changes the provider's byte capacity mid-simulation (0 =
// unlimited). Shrinking below the bytes already used does not delete
// anything; it only makes subsequent uploads fail with ErrOverCapacity —
// the way a real account behaves when its quota is reduced.
func (b *Backend) SetCapacity(bytes int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.capacity = bytes
}

// Capacity returns the current byte capacity (0 = unlimited).
func (b *Backend) Capacity() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.capacity
}

// The methods below are the state-dump and fault-injection surface used by
// the chaos harness (internal/harness). They bypass availability gating,
// op counters, and transport costs on purpose: they model an omniscient
// observer (or a byzantine operator) acting directly on the provider's
// durable state, not a client performing API calls.

// ObjectNames returns the names of all stored objects under prefix, sorted.
// Ungated: works even while the provider is marked unavailable.
func (b *Backend) ObjectNames(prefix string) []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []string
	for name, vs := range b.objects {
		if len(vs) > 0 && hasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// PeekObject returns a copy of the latest stored bytes of an object without
// counting as a download and without availability gating.
func (b *Backend) PeekObject(name string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	vs := b.objects[name]
	if len(vs) == 0 {
		return nil, false
	}
	return append([]byte(nil), vs[len(vs)-1].data...), true
}

// MutateObject applies fn to the latest version of an object in place —
// bit rot and tampering injection. fn receives a copy and returns the new
// bytes; returning nil keeps the object unchanged. Reports whether the
// object existed.
func (b *Backend) MutateObject(name string, fn func([]byte) []byte) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	vs := b.objects[name]
	if len(vs) == 0 {
		return false
	}
	old := vs[len(vs)-1].data
	mutated := fn(append([]byte(nil), old...))
	if mutated == nil {
		return false
	}
	b.used += int64(len(mutated)) - int64(len(old))
	vs[len(vs)-1].data = mutated
	return true
}

// InjectObject writes an object directly into the store, bypassing
// capacity, availability, and identity semantics — used by the harness to
// seed deliberately invalid states (e.g. a share placed on a provider the
// placement guard would have refused).
func (b *Backend) InjectObject(name string, data []byte, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, v := range b.objects[name] {
		b.used -= int64(len(v.data))
	}
	cp := append([]byte(nil), data...)
	b.objects[name] = []version{{data: cp, modified: now}}
	b.used += int64(len(cp))
}

// RemoveObject deletes an object directly (all versions), bypassing gating
// and counters — models silent durable-state loss at the provider.
func (b *Backend) RemoveObject(name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	vs := b.objects[name]
	if len(vs) == 0 {
		return false
	}
	for _, v := range vs {
		b.used -= int64(len(v.data))
	}
	delete(b.objects, name)
	delete(b.refs, name)
	return true
}

// gate applies availability and fault injection; callers hold b.mu.
func (b *Backend) gateLocked() error {
	if !b.available {
		return fmt.Errorf("%w: %s is down", csp.ErrUnavailable, b.name)
	}
	if b.failNext > 0 {
		b.failNext--
		return fmt.Errorf("%w: %s injected fault", csp.ErrUnavailable, b.name)
	}
	return nil
}

// Stats is a snapshot of backend counters.
type Stats struct {
	Objects   int
	UsedBytes int64
	Uploads   int64
	Downloads int64
	Lists     int64
	Deletes   int64
	BytesIn   int64
	BytesOut  int64
}

// Stats returns a snapshot of the op counters.
func (b *Backend) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, vs := range b.objects {
		n += len(vs)
	}
	return Stats{
		Objects:   n,
		UsedBytes: b.used,
		Uploads:   b.uploads,
		Downloads: b.downloads,
		Lists:     b.lists,
		Deletes:   b.deletes,
		BytesIn:   b.bytesIn,
		BytesOut:  b.bytesOut,
	}
}

// ResetStats zeroes the op counters (not the objects).
func (b *Backend) ResetStats() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.uploads, b.downloads, b.lists, b.deletes = 0, 0, 0, 0
	b.bytesIn, b.bytesOut = 0, 0
}

func (b *Backend) upload(name string, data []byte, now time.Time) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.gateLocked(); err != nil {
		return err
	}
	delta := int64(len(data))
	if b.identity == csp.NameKeyed {
		if old := b.objects[name]; len(old) > 0 {
			delta -= int64(len(old[len(old)-1].data))
		}
	}
	if b.capacity > 0 && b.used+delta > b.capacity {
		return fmt.Errorf("%w: %s used %d of %d bytes", csp.ErrOverCapacity, b.name, b.used, b.capacity)
	}
	cp := append([]byte(nil), data...)
	v := version{data: cp, modified: now}
	if b.identity == csp.NameKeyed {
		// Name-keyed (Dropbox): overwrite.
		b.objects[name] = []version{v}
	} else {
		// ID-keyed (Google Drive): duplicate object under the same name.
		b.objects[name] = append(b.objects[name], v)
	}
	b.used += delta
	b.uploads++
	b.bytesIn += int64(len(data))
	return nil
}

func (b *Backend) download(name string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.gateLocked(); err != nil {
		return nil, err
	}
	vs := b.objects[name]
	if len(vs) == 0 {
		return nil, fmt.Errorf("%w: %s has no %q", csp.ErrNotFound, b.name, name)
	}
	latest := vs[len(vs)-1]
	b.downloads++
	b.bytesOut += int64(len(latest.data))
	return append([]byte(nil), latest.data...), nil
}

func (b *Backend) list(prefix string) ([]csp.ObjectInfo, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.gateLocked(); err != nil {
		return nil, err
	}
	b.lists++
	var out []csp.ObjectInfo
	for name, vs := range b.objects {
		if len(vs) == 0 || !hasPrefix(name, prefix) {
			continue
		}
		latest := vs[len(vs)-1]
		out = append(out, csp.ObjectInfo{Name: name, Size: int64(len(latest.data)), Modified: latest.modified})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func (b *Backend) delete(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.gateLocked(); err != nil {
		return err
	}
	vs := b.objects[name]
	if len(vs) == 0 {
		return fmt.Errorf("%w: %s has no %q", csp.ErrNotFound, b.name, name)
	}
	for _, v := range vs {
		b.used -= int64(len(v.data))
	}
	delete(b.objects, name)
	delete(b.refs, name) // plain delete bypasses refcounts; tokens die with the object
	b.deletes++
	return nil
}

// Reference-token operations (csp.RefStore semantics). Tokens live in
// durable state alongside the objects — they survive availability flips
// (crash/restart) like everything else — and every call is gated and
// atomic under b.mu, which is exactly the capability the refcounted-GC
// protocol needs from a provider.

func (b *Backend) putRef(name, ref string, data []byte, now time.Time) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.gateLocked(); err != nil {
		return false, err
	}
	if len(b.objects[name]) > 0 {
		b.addRefLocked(name, ref)
		return false, nil
	}
	delta := int64(len(data))
	if b.capacity > 0 && b.used+delta > b.capacity {
		return false, fmt.Errorf("%w: %s used %d of %d bytes", csp.ErrOverCapacity, b.name, b.used, b.capacity)
	}
	cp := append([]byte(nil), data...)
	b.objects[name] = []version{{data: cp, modified: now}}
	b.used += delta
	b.uploads++
	b.bytesIn += delta
	b.addRefLocked(name, ref)
	return true, nil
}

func (b *Backend) addRef(name, ref string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.gateLocked(); err != nil {
		return err
	}
	if len(b.objects[name]) == 0 {
		return fmt.Errorf("%w: %s has no %q", csp.ErrNotFound, b.name, name)
	}
	b.addRefLocked(name, ref)
	return nil
}

func (b *Backend) delRef(name, ref string) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.gateLocked(); err != nil {
		return false, err
	}
	vs := b.objects[name]
	if len(vs) == 0 {
		return false, fmt.Errorf("%w: %s has no %q", csp.ErrNotFound, b.name, name)
	}
	if toks := b.refs[name]; toks != nil {
		delete(toks, ref)
		if len(toks) > 0 {
			return false, nil
		}
	}
	// Last token drained (or the object never had any): remove the object
	// and its token set in one atomic step — there is no window in which a
	// zero-referenced share object lingers or a referenced one is gone.
	for _, v := range vs {
		b.used -= int64(len(v.data))
	}
	delete(b.objects, name)
	delete(b.refs, name)
	b.deletes++
	return true, nil
}

func (b *Backend) refList(name string) ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.gateLocked(); err != nil {
		return nil, err
	}
	if len(b.objects[name]) == 0 {
		return nil, fmt.Errorf("%w: %s has no %q", csp.ErrNotFound, b.name, name)
	}
	out := make([]string, 0, len(b.refs[name]))
	for tok := range b.refs[name] {
		out = append(out, tok)
	}
	sort.Strings(out)
	return out, nil
}

func (b *Backend) addRefLocked(name, ref string) {
	toks := b.refs[name]
	if toks == nil {
		toks = make(map[string]bool)
		b.refs[name] = toks
	}
	toks[ref] = true
}

// RefTokens returns the reference tokens registered on an object, sorted.
// Ungated oracle dump for the harness: works while the provider is down.
func (b *Backend) RefTokens(name string) []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.refs[name]))
	for tok := range b.refs[name] {
		out = append(out, tok)
	}
	sort.Strings(out)
	return out
}

// objectSize returns the size of the latest version, for transport costing.
func (b *Backend) objectSize(name string) (int64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	vs := b.objects[name]
	if len(vs) == 0 {
		return 0, false
	}
	return int64(len(vs[len(vs)-1].data)), true
}

// DuplicateCount reports how many stored objects share the given name —
// > 1 only on id-keyed providers.
func (b *Backend) DuplicateCount(name string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.objects[name])
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
