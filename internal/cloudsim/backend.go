// Package cloudsim provides CYRUS's cloud-storage-provider implementations
// for offline use: an in-memory simulated provider (SimStore) that
// reproduces the API quirks of commercial CSPs, and a filesystem-backed
// provider (DirStore) for the CLI and integration tests.
//
// A Backend holds the provider's durable state (objects, capacity,
// availability) and is shared by every client; each client wraps it in a
// SimStore bound to that client's transport (its netsim node, or nothing
// for instant transfers). This mirrors reality: one Dropbox account, many
// devices, each with its own network path.
package cloudsim

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/csp"
)

// Backend is the durable state of one simulated provider.
type Backend struct {
	name     string
	identity csp.ObjectIdentity

	mu        sync.Mutex
	objects   map[string][]version // name -> versions (id-keyed keeps all)
	used      int64
	capacity  int64 // 0 = unlimited
	available bool
	failNext  int // fail the next N operations (fault injection)

	// op counters for assertions and the Figure-18 share-distribution
	// experiment.
	uploads, downloads, lists, deletes int64
	bytesIn, bytesOut                  int64
}

type version struct {
	data     []byte
	modified time.Time
}

// NewBackend creates a provider with the given object-identity semantics.
// capacity of 0 means unlimited.
func NewBackend(name string, identity csp.ObjectIdentity, capacity int64) *Backend {
	return &Backend{
		name:      name,
		identity:  identity,
		objects:   make(map[string][]version),
		capacity:  capacity,
		available: true,
	}
}

// Name returns the provider name.
func (b *Backend) Name() string { return b.name }

// Identity returns the provider's object identity model.
func (b *Backend) Identity() csp.ObjectIdentity { return b.identity }

// SetAvailable flips the provider's availability; unavailable providers
// fail every call with csp.ErrUnavailable (long outages, paper §5.5).
func (b *Backend) SetAvailable(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.available = ok
}

// Available reports current availability.
func (b *Backend) Available() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.available
}

// FailNext makes the next n operations fail with csp.ErrUnavailable, then
// recover — transient fault injection.
func (b *Backend) FailNext(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failNext = n
}

// gate applies availability and fault injection; callers hold b.mu.
func (b *Backend) gateLocked() error {
	if !b.available {
		return fmt.Errorf("%w: %s is down", csp.ErrUnavailable, b.name)
	}
	if b.failNext > 0 {
		b.failNext--
		return fmt.Errorf("%w: %s injected fault", csp.ErrUnavailable, b.name)
	}
	return nil
}

// Stats is a snapshot of backend counters.
type Stats struct {
	Objects   int
	UsedBytes int64
	Uploads   int64
	Downloads int64
	Lists     int64
	Deletes   int64
	BytesIn   int64
	BytesOut  int64
}

// Stats returns a snapshot of the op counters.
func (b *Backend) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, vs := range b.objects {
		n += len(vs)
	}
	return Stats{
		Objects:   n,
		UsedBytes: b.used,
		Uploads:   b.uploads,
		Downloads: b.downloads,
		Lists:     b.lists,
		Deletes:   b.deletes,
		BytesIn:   b.bytesIn,
		BytesOut:  b.bytesOut,
	}
}

// ResetStats zeroes the op counters (not the objects).
func (b *Backend) ResetStats() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.uploads, b.downloads, b.lists, b.deletes = 0, 0, 0, 0
	b.bytesIn, b.bytesOut = 0, 0
}

func (b *Backend) upload(name string, data []byte, now time.Time) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.gateLocked(); err != nil {
		return err
	}
	delta := int64(len(data))
	if b.identity == csp.NameKeyed {
		if old := b.objects[name]; len(old) > 0 {
			delta -= int64(len(old[len(old)-1].data))
		}
	}
	if b.capacity > 0 && b.used+delta > b.capacity {
		return fmt.Errorf("%w: %s used %d of %d bytes", csp.ErrOverCapacity, b.name, b.used, b.capacity)
	}
	cp := append([]byte(nil), data...)
	v := version{data: cp, modified: now}
	if b.identity == csp.NameKeyed {
		// Name-keyed (Dropbox): overwrite.
		b.objects[name] = []version{v}
	} else {
		// ID-keyed (Google Drive): duplicate object under the same name.
		b.objects[name] = append(b.objects[name], v)
	}
	b.used += delta
	b.uploads++
	b.bytesIn += int64(len(data))
	return nil
}

func (b *Backend) download(name string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.gateLocked(); err != nil {
		return nil, err
	}
	vs := b.objects[name]
	if len(vs) == 0 {
		return nil, fmt.Errorf("%w: %s has no %q", csp.ErrNotFound, b.name, name)
	}
	latest := vs[len(vs)-1]
	b.downloads++
	b.bytesOut += int64(len(latest.data))
	return append([]byte(nil), latest.data...), nil
}

func (b *Backend) list(prefix string) ([]csp.ObjectInfo, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.gateLocked(); err != nil {
		return nil, err
	}
	b.lists++
	var out []csp.ObjectInfo
	for name, vs := range b.objects {
		if len(vs) == 0 || !hasPrefix(name, prefix) {
			continue
		}
		latest := vs[len(vs)-1]
		out = append(out, csp.ObjectInfo{Name: name, Size: int64(len(latest.data)), Modified: latest.modified})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func (b *Backend) delete(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.gateLocked(); err != nil {
		return err
	}
	vs := b.objects[name]
	if len(vs) == 0 {
		return fmt.Errorf("%w: %s has no %q", csp.ErrNotFound, b.name, name)
	}
	for _, v := range vs {
		b.used -= int64(len(v.data))
	}
	delete(b.objects, name)
	b.deletes++
	return nil
}

// objectSize returns the size of the latest version, for transport costing.
func (b *Backend) objectSize(name string) (int64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	vs := b.objects[name]
	if len(vs) == 0 {
		return 0, false
	}
	return int64(len(vs[len(vs)-1].data)), true
}

// DuplicateCount reports how many stored objects share the given name —
// > 1 only on id-keyed providers.
func (b *Backend) DuplicateCount(name string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.objects[name])
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
