package cloudsim

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/csp"
)

func TestRefStoreLifecycle(t *testing.T) {
	b := NewBackend("d", csp.NameKeyed, 0)
	s := authedStore(t, b)
	ctx := context.Background()

	// AddRef before the object exists is the existence-probe miss.
	if err := s.AddRef(ctx, "cas-1", "u1"); !errors.Is(err, csp.ErrNotFound) {
		t.Fatalf("AddRef on missing object err = %v", err)
	}

	created, err := s.PutRef(ctx, "cas-1", "u1", []byte("payload"))
	if err != nil || !created {
		t.Fatalf("PutRef = (%v, %v), want created", created, err)
	}
	// A second PutRef is the dedup hit: no new object, token registered.
	created, err = s.PutRef(ctx, "cas-1", "u2", []byte("payload"))
	if err != nil || created {
		t.Fatalf("second PutRef = (%v, %v), want hit", created, err)
	}
	if refs, err := s.Refs(ctx, "cas-1"); err != nil || !reflect.DeepEqual(refs, []string{"u1", "u2"}) {
		t.Fatalf("Refs = %v, %v", refs, err)
	}
	// AddRef is idempotent per token.
	if err := s.AddRef(ctx, "cas-1", "u2"); err != nil {
		t.Fatal(err)
	}
	if got := b.RefTokens("cas-1"); !reflect.DeepEqual(got, []string{"u1", "u2"}) {
		t.Fatalf("RefTokens = %v", got)
	}

	// Releasing one of two tokens keeps the object; dropping an
	// unregistered token is an idempotent no-op.
	if removed, err := s.DelRef(ctx, "cas-1", "u1"); err != nil || removed {
		t.Fatalf("DelRef u1 = (%v, %v)", removed, err)
	}
	if removed, err := s.DelRef(ctx, "cas-1", "u1"); err != nil || removed {
		t.Fatalf("repeated DelRef u1 = (%v, %v)", removed, err)
	}
	if data, err := s.Download(ctx, "cas-1"); err != nil || !bytes.Equal(data, []byte("payload")) {
		t.Fatalf("object lost while still referenced: %q, %v", data, err)
	}

	// Draining the last token deletes the object atomically.
	if removed, err := s.DelRef(ctx, "cas-1", "u2"); err != nil || !removed {
		t.Fatalf("final DelRef = (%v, %v), want removed", removed, err)
	}
	if _, err := s.Download(ctx, "cas-1"); !errors.Is(err, csp.ErrNotFound) {
		t.Fatalf("object survived refcount zero: err = %v", err)
	}
	if got := b.RefTokens("cas-1"); len(got) != 0 {
		t.Fatalf("tokens survived object deletion: %v", got)
	}
	if removed, err := s.DelRef(ctx, "cas-1", "u2"); !errors.Is(err, csp.ErrNotFound) || removed {
		t.Fatalf("DelRef on missing object = (%v, %v)", removed, err)
	}
}

func TestRefStoreGatingAndDurability(t *testing.T) {
	b := NewBackend("d", csp.IDKeyed, 0)
	s := authedStore(t, b)
	ctx := context.Background()

	if _, err := s.PutRef(ctx, "cas-2", "u1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	b.SetAvailable(false)
	if err := s.AddRef(ctx, "cas-2", "u2"); !errors.Is(err, csp.ErrUnavailable) {
		t.Fatalf("AddRef while down err = %v", err)
	}
	if _, err := s.DelRef(ctx, "cas-2", "u1"); !errors.Is(err, csp.ErrUnavailable) {
		t.Fatalf("DelRef while down err = %v", err)
	}
	// Tokens are durable state: they survive the restart.
	b.SetAvailable(true)
	if refs, err := s.Refs(ctx, "cas-2"); err != nil || !reflect.DeepEqual(refs, []string{"u1"}) {
		t.Fatalf("Refs after restart = %v, %v", refs, err)
	}

	// Plain Delete (the 5-call fallback) bypasses refcounts and clears
	// the token set with the object.
	if err := s.Delete(ctx, "cas-2"); err != nil {
		t.Fatal(err)
	}
	if got := b.RefTokens("cas-2"); len(got) != 0 {
		t.Fatalf("tokens survived plain Delete: %v", got)
	}
}

func TestRefStoreCapacity(t *testing.T) {
	b := NewBackend("d", csp.NameKeyed, 4)
	s := authedStore(t, b)
	ctx := context.Background()
	if _, err := s.PutRef(ctx, "big", "u1", []byte("12345")); !errors.Is(err, csp.ErrOverCapacity) {
		t.Fatalf("PutRef over capacity err = %v", err)
	}
	// A dedup hit must not be charged against capacity.
	if _, err := s.PutRef(ctx, "fit", "u1", []byte("1234")); err != nil {
		t.Fatal(err)
	}
	if created, err := s.PutRef(ctx, "fit", "u2", []byte("1234")); err != nil || created {
		t.Fatalf("hit on full store = (%v, %v)", created, err)
	}
}

// Two uploaders racing PutRef on the same name must never create a
// duplicate object (even on id-keyed providers) and must both end up
// referenced — the delete-racing-upload safety argument rests on this
// atomicity.
func TestRefStorePutRefRace(t *testing.T) {
	b := NewBackend("d", csp.IDKeyed, 0)
	ctx := context.Background()
	var wg sync.WaitGroup
	createdCount := make(chan bool, 8)
	for i := 0; i < 8; i++ {
		tok := string(rune('a' + i))
		s := authedStore(t, b)
		wg.Add(1)
		go func() {
			defer wg.Done()
			created, err := s.PutRef(ctx, "cas-race", tok, []byte("same bytes"))
			if err != nil {
				t.Error(err)
			}
			createdCount <- created
		}()
	}
	wg.Wait()
	close(createdCount)
	n := 0
	for c := range createdCount {
		if c {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("object created %d times, want exactly 1", n)
	}
	if d := b.DuplicateCount("cas-race"); d != 1 {
		t.Fatalf("duplicate objects under CAS name: %d", d)
	}
	if got := b.RefTokens("cas-race"); len(got) != 8 {
		t.Fatalf("RefTokens = %v, want 8 tokens", got)
	}
}
