package cloudsim

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/csp"
	"repro/internal/netsim"
)

func authedStore(t *testing.T, b *Backend, opts ...Option) *SimStore {
	t.Helper()
	s := NewSimStore(b, opts...)
	if err := s.Authenticate(context.Background(), csp.Credentials{Token: "tok"}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestUnauthenticatedCallsFail(t *testing.T) {
	s := NewSimStore(NewBackend("d", csp.NameKeyed, 0))
	ctx := context.Background()
	if _, err := s.List(ctx, ""); !errors.Is(err, csp.ErrUnauthorized) {
		t.Fatalf("List err = %v", err)
	}
	if err := s.Upload(ctx, "x", []byte("y")); !errors.Is(err, csp.ErrUnauthorized) {
		t.Fatalf("Upload err = %v", err)
	}
	if _, err := s.Download(ctx, "x"); !errors.Is(err, csp.ErrUnauthorized) {
		t.Fatalf("Download err = %v", err)
	}
	if err := s.Delete(ctx, "x"); !errors.Is(err, csp.ErrUnauthorized) {
		t.Fatalf("Delete err = %v", err)
	}
	if err := s.Authenticate(ctx, csp.Credentials{}); !errors.Is(err, csp.ErrUnauthorized) {
		t.Fatalf("empty-token auth err = %v", err)
	}
}

func TestUploadDownloadRoundTrip(t *testing.T) {
	s := authedStore(t, NewBackend("d", csp.NameKeyed, 0))
	ctx := context.Background()
	if err := s.Upload(ctx, "share-1", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Download(ctx, "share-1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("Download = %q", got)
	}
	if _, err := s.Download(ctx, "missing"); !errors.Is(err, csp.ErrNotFound) {
		t.Fatalf("missing Download err = %v", err)
	}
}

func TestNameKeyedOverwrites(t *testing.T) {
	b := NewBackend("dropbox-like", csp.NameKeyed, 0)
	s := authedStore(t, b)
	ctx := context.Background()
	_ = s.Upload(ctx, "f", []byte("v1"))
	_ = s.Upload(ctx, "f", []byte("v2"))
	if n := b.DuplicateCount("f"); n != 1 {
		t.Fatalf("name-keyed provider kept %d versions", n)
	}
	got, _ := s.Download(ctx, "f")
	if string(got) != "v2" {
		t.Fatalf("overwrite lost: %q", got)
	}
}

func TestIDKeyedDuplicates(t *testing.T) {
	b := NewBackend("gdrive-like", csp.IDKeyed, 0)
	s := authedStore(t, b)
	ctx := context.Background()
	_ = s.Upload(ctx, "f", []byte("v1"))
	_ = s.Upload(ctx, "f", []byte("v2"))
	if n := b.DuplicateCount("f"); n != 2 {
		t.Fatalf("id-keyed provider kept %d versions, want 2 duplicates", n)
	}
	// Latest wins on download.
	got, _ := s.Download(ctx, "f")
	if string(got) != "v2" {
		t.Fatalf("Download = %q, want latest", got)
	}
	// List reports the name once.
	infos, err := s.List(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "f" {
		t.Fatalf("List = %v", infos)
	}
	// Delete removes all duplicates.
	if err := s.Delete(ctx, "f"); err != nil {
		t.Fatal(err)
	}
	if n := b.DuplicateCount("f"); n != 0 {
		t.Fatalf("Delete left %d versions", n)
	}
}

func TestListPrefixAndSorting(t *testing.T) {
	s := authedStore(t, NewBackend("d", csp.NameKeyed, 0))
	ctx := context.Background()
	for _, n := range []string{"meta-b", "share-2", "meta-a", "share-1"} {
		if err := s.Upload(ctx, n, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	metas, err := s.List(ctx, "meta-")
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 2 || metas[0].Name != "meta-a" || metas[1].Name != "meta-b" {
		t.Fatalf("List(meta-) = %v", metas)
	}
	all, _ := s.List(ctx, "")
	if len(all) != 4 {
		t.Fatalf("List(\"\") returned %d objects", len(all))
	}
}

func TestCapacityEnforcement(t *testing.T) {
	b := NewBackend("small", csp.NameKeyed, 10)
	s := authedStore(t, b)
	ctx := context.Background()
	if err := s.Upload(ctx, "a", make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := s.Upload(ctx, "b", make([]byte, 8)); !errors.Is(err, csp.ErrOverCapacity) {
		t.Fatalf("over-capacity Upload err = %v", err)
	}
	// Overwriting on a name-keyed provider reclaims the old size first.
	if err := s.Upload(ctx, "a", make([]byte, 10)); err != nil {
		t.Fatalf("overwrite within capacity: %v", err)
	}
	// Deleting frees space.
	if err := s.Delete(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Upload(ctx, "c", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.UsedBytes != 10 {
		t.Fatalf("UsedBytes = %d, want 10", st.UsedBytes)
	}
}

func TestAvailabilityAndFaultInjection(t *testing.T) {
	b := NewBackend("flaky", csp.NameKeyed, 0)
	s := authedStore(t, b)
	ctx := context.Background()

	b.SetAvailable(false)
	if err := s.Upload(ctx, "x", []byte("y")); !errors.Is(err, csp.ErrUnavailable) {
		t.Fatalf("down Upload err = %v", err)
	}
	if b.Available() {
		t.Fatal("Available() = true while down")
	}
	b.SetAvailable(true)

	b.FailNext(2)
	if err := s.Upload(ctx, "x", []byte("y")); !errors.Is(err, csp.ErrUnavailable) {
		t.Fatalf("fault 1 err = %v", err)
	}
	if _, err := s.Download(ctx, "x"); !errors.Is(err, csp.ErrUnavailable) {
		t.Fatalf("fault 2 err = %v", err)
	}
	if err := s.Upload(ctx, "x", []byte("y")); err != nil {
		t.Fatalf("recovered Upload err = %v", err)
	}
}

func TestStatsAndReset(t *testing.T) {
	b := NewBackend("d", csp.NameKeyed, 0)
	s := authedStore(t, b)
	ctx := context.Background()
	_ = s.Upload(ctx, "a", make([]byte, 100))
	_, _ = s.Download(ctx, "a")
	_, _ = s.List(ctx, "")
	_ = s.Delete(ctx, "a")
	st := b.Stats()
	if st.Uploads != 1 || st.Downloads != 1 || st.Lists != 1 || st.Deletes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesIn != 100 || st.BytesOut != 100 {
		t.Fatalf("byte counters = %+v", st)
	}
	b.ResetStats()
	if st := b.Stats(); st.Uploads != 0 || st.BytesIn != 0 {
		t.Fatalf("ResetStats left %+v", st)
	}
}

func TestCancelledContext(t *testing.T) {
	s := authedStore(t, NewBackend("d", csp.NameKeyed, 0))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Upload(ctx, "x", []byte("y")); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Upload err = %v", err)
	}
}

func TestTransportCharging(t *testing.T) {
	// Under netsim, an upload costs one RTT plus size/bandwidth.
	net := netsim.New(time.Time{})
	net.AddNode("client", netsim.NodeConfig{})
	net.SetLink("client", "d", netsim.LinkConfig{RTT: 100 * time.Millisecond, UpBps: 1 << 20, DownBps: 2 << 20})
	b := NewBackend("d", csp.NameKeyed, 0)
	s := NewSimStore(b, WithTransport(NodeTransport{Net: net, Node: "client"}), WithClock(net.Now))

	ctx := context.Background()
	net.Run(func() {
		if err := s.Authenticate(ctx, csp.Credentials{Token: "t"}); err != nil {
			t.Error(err)
		}
		if err := s.Upload(ctx, "x", make([]byte, 1<<20)); err != nil {
			t.Error(err)
		}
	})
	// auth RTT (0.1) + upload RTT (0.1) + 1MiB at 1MiB/s (1.0) = 1.2s.
	if got := net.VirtualNow(); got < 1.1999 || got > 1.2001 {
		t.Fatalf("virtual elapsed = %.4f, want 1.2", got)
	}

	net2 := netsim.New(time.Time{})
	net2.AddNode("client", netsim.NodeConfig{})
	net2.SetLink("client", "d", netsim.LinkConfig{RTT: 100 * time.Millisecond, UpBps: 1 << 20, DownBps: 2 << 20})
	s2 := NewSimStore(b, WithTransport(NodeTransport{Net: net2, Node: "client"}), WithClock(net2.Now))
	net2.Run(func() {
		if err := s2.Authenticate(ctx, csp.Credentials{Token: "t"}); err != nil {
			t.Error(err)
		}
		if _, err := s2.Download(ctx, "x"); err != nil {
			t.Error(err)
		}
	})
	// auth RTT (0.1) + download RTT (0.1) + 1MiB at 2MiB/s (0.5) = 0.7s.
	if got := net2.VirtualNow(); got < 0.6999 || got > 0.7001 {
		t.Fatalf("download elapsed = %.4f, want 0.7", got)
	}
}

func TestVirtualClockStampsObjects(t *testing.T) {
	net := netsim.New(time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC))
	net.AddNode("client", netsim.NodeConfig{})
	net.SetLink("client", "d", netsim.LinkConfig{RTT: time.Second, UpBps: 1, DownBps: 1})
	b := NewBackend("d", csp.NameKeyed, 0)
	s := NewSimStore(b, WithTransport(NodeTransport{Net: net, Node: "client"}), WithClock(net.Now))
	ctx := context.Background()
	net.Run(func() {
		_ = s.Authenticate(ctx, csp.Credentials{Token: "t"})
		_ = s.Upload(ctx, "x", []byte("y"))
		infos, err := s.List(ctx, "")
		if err != nil || len(infos) != 1 {
			t.Errorf("List: %v %v", infos, err)
			return
		}
		if infos[0].Modified.Year() != 2014 {
			t.Errorf("Modified = %v, want virtual 2014 time", infos[0].Modified)
		}
	})
}

func TestDirStore(t *testing.T) {
	root := t.TempDir()
	d, err := NewDirStore("local", root)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := d.List(ctx, ""); !errors.Is(err, csp.ErrUnauthorized) {
		t.Fatalf("unauthenticated List err = %v", err)
	}
	if err := d.Authenticate(ctx, csp.Credentials{Token: "t"}); err != nil {
		t.Fatal(err)
	}

	if err := d.Upload(ctx, "share/with/slashes", []byte("data")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Download(ctx, "share/with/slashes")
	if err != nil || string(got) != "data" {
		t.Fatalf("Download = %q, %v", got, err)
	}
	infos, err := d.List(ctx, "share/")
	if err != nil || len(infos) != 1 || infos[0].Name != "share/with/slashes" {
		t.Fatalf("List = %v, %v", infos, err)
	}
	if _, err := d.Download(ctx, "missing"); !errors.Is(err, csp.ErrNotFound) {
		t.Fatalf("missing err = %v", err)
	}
	if err := d.Delete(ctx, "share/with/slashes"); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(ctx, "share/with/slashes"); !errors.Is(err, csp.ErrNotFound) {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestDirStoreNameEncodingRoundTrip(t *testing.T) {
	for _, name := range []string{"plain", "a/b", "a\\b", "..", "x..y", "%2F", "%25", "%"} {
		got, ok := decodeName(encodeName(name))
		if !ok || got != name {
			t.Errorf("round trip %q -> %q (ok=%v)", name, got, ok)
		}
	}
	if _, ok := decodeName(".upload-123"); ok {
		t.Error("temp file decoded as object")
	}
}

func TestConcurrentBackendAccess(t *testing.T) {
	b := NewBackend("d", csp.IDKeyed, 0)
	ctx := context.Background()
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		s := authedStore(t, b)
		go func(i int) {
			var err error
			for j := 0; j < 50 && err == nil; j++ {
				err = s.Upload(ctx, "obj", []byte{byte(i)})
				if err == nil {
					_, err = s.Download(ctx, "obj")
				}
			}
			done <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if n := b.DuplicateCount("obj"); n != 400 {
		t.Fatalf("DuplicateCount = %d, want 400", n)
	}
}

// failAfterReader yields n bytes and then fails, standing in for an upload
// whose writer died mid-stream.
type failAfterReader struct {
	n   int
	err error
}

func (r *failAfterReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, r.err
	}
	if len(p) > r.n {
		p = p[:r.n]
	}
	for i := range p {
		p[i] = 'x'
	}
	r.n -= len(p)
	return len(p), nil
}

// TestDirStoreKilledMidWriteLeavesNoTornObject pins the atomicity contract:
// an upload that dies mid-write — whether the reader fails (client abort)
// or the process is killed between temp write and rename (simulated by the
// orphan temp file a real kill leaves behind) — must never surface a torn
// or partial object through List or Download.
func TestDirStoreKilledMidWriteLeavesNoTornObject(t *testing.T) {
	root := t.TempDir()
	d, err := NewDirStore("local", root)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := d.Authenticate(ctx, csp.Credentials{Token: "t"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Upload(ctx, "obj", []byte("intact")); err != nil {
		t.Fatal(err)
	}

	// Client abort: the body reader errors after a partial write.
	boom := errors.New("killed mid-write")
	if _, err := d.UploadFrom(ctx, "obj", &failAfterReader{n: 1 << 16, err: boom}); !errors.Is(err, boom) {
		t.Fatalf("UploadFrom err = %v, want %v", err, boom)
	}
	// Process kill between write and rename: the orphan temp file stays on
	// disk. Fabricate one the way os.CreateTemp names them.
	if err := os.WriteFile(filepath.Join(root, ".upload-4242"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := d.Download(ctx, "obj")
	if err != nil || string(got) != "intact" {
		t.Fatalf("Download after aborted overwrite = %q, %v; want intact", got, err)
	}
	infos, err := d.List(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "obj" || infos[0].Size != int64(len("intact")) {
		t.Fatalf("List sees torn state: %+v", infos)
	}
}

// TestDirStoreStreamingRoundTrip covers the StreamUploader/StreamDownloader
// capability pair end to end.
func TestDirStoreStreamingRoundTrip(t *testing.T) {
	root := t.TempDir()
	d, err := NewDirStore("local", root)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := d.Authenticate(ctx, csp.Credentials{Token: "t"}); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("stream!"), 10_000)
	n, err := d.UploadFrom(ctx, "big/obj", bytes.NewReader(payload))
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("UploadFrom = %d, %v", n, err)
	}
	var out bytes.Buffer
	n, err = d.DownloadTo(ctx, "big/obj", &out)
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("DownloadTo = %d, %v", n, err)
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("streamed bytes differ from uploaded bytes")
	}
	if _, err := d.DownloadTo(ctx, "missing", &out); !errors.Is(err, csp.ErrNotFound) {
		t.Fatalf("missing DownloadTo err = %v", err)
	}
}
