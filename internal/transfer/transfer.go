// Package transfer is the CYRUS client's single dispatch path for all
// provider I/O: chunk-share scatter/gather, metadata reads and writes,
// migration uploads, probes, and deletes all route through one Engine
// (ROADMAP: consolidate the four hand-rolled fan-outs).
//
// The engine provides, in one place, what each call site used to
// approximate independently:
//
//   - a bounded global in-flight limit plus a per-CSP in-flight limit, so
//     one slow provider cannot absorb the client's whole concurrency
//     budget (the paper's straggler regime);
//   - a retry policy driven by the csp error taxonomy — transient errors
//     (csp.ErrUnavailable and unclassified transport faults) retry with
//     exponential backoff and deterministic jitter on the client's
//     vclock.Runtime, so netsim experiments replay byte-identically;
//   - a per-operation failed-provider set (Op): once a provider burns its
//     retries, sibling shares of the same operation skip it instead of
//     re-probing it from scratch;
//   - first-error cancellation (Op.Fail cancels the operation context, so
//     doomed sibling transfers stop instead of finishing wasted work);
//   - hedged downloads: when a source exceeds its expected latency, a
//     single backup attempt is launched from the next candidate and the
//     first success wins.
//
// Everything blocks only through vclock.Runtime primitives (Group.Wait,
// Sleep) — never on raw channels — so the engine is safe under netsim
// virtual time.
package transfer

import (
	"context"
	"errors"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"repro/internal/csp"
	"repro/internal/obs"
	"repro/internal/vclock"
)

// ErrSkipped is returned by Op.Do when the target provider already
// exhausted its retries earlier in the same operation: the attempt was
// not made, and the caller should walk to its next candidate.
var ErrSkipped = errors.New("transfer: provider skipped (failed earlier in this operation)")

// Tunables bound the engine's scheduling and retry behavior. Zero values
// take the documented defaults.
type Tunables struct {
	// MaxInFlight caps concurrently executing attempts across all
	// providers. Default 32.
	MaxInFlight int
	// PerCSP caps concurrently executing attempts per provider. Default 4.
	PerCSP int
	// Attempts is how many times a transient failure is tried per
	// provider (1 = no retry). Default 2.
	Attempts int
	// BaseBackoff is the delay before the first retry; it doubles per
	// attempt up to MaxBackoff. Default 25ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff growth. Default 2s.
	MaxBackoff time.Duration
	// HedgeMultiple scales the expected attempt latency into the hedge
	// trigger delay: a backup download launches after
	// HedgeMultiple x expected. Default 3. Under the load-adaptive
	// controller this is the starting point the per-CSP effective
	// multiple is tuned from.
	HedgeMultiple float64
	// DisableHedge turns hedged downloads off (the attempt-walk falls
	// back to sequential failover).
	DisableHedge bool
	// HedgeLoadThreshold is the Ghosh-crossover utilization bound: hedges
	// and redundant race lanes are suppressed once the global admission
	// queue holds HedgeLoadThreshold x MaxInFlight waiting attempts.
	// Past that point a redundant request joins the congestion it is
	// trying to dodge. Default 0.75; negative disables suppression.
	HedgeLoadThreshold float64
	// HedgeMinSamples arms hedging against a provider only after this
	// many successful contacts have fed its latency EWMA — the cold-start
	// guard: an EWMA seeded from one anomalously fast sample would
	// otherwise hedge nearly every request. Default 8; negative arms
	// immediately.
	HedgeMinSamples int
	// HedgeStatic restores the open-loop HedgeMultiple x expected
	// deadline — no load feedback, no cold-start arming, no adaptive
	// multiple. It is the baseline policy the redundancy experiments
	// compare the closed loop against.
	HedgeStatic bool
	// HedgeFixed, when positive, arms every hedge with this constant
	// trigger delay — the operator-tuned fixed timeout real deployments
	// start from. Fully open loop: no expectation model, no load
	// feedback, no suppression. A delay tuned at low load turns into a
	// hedge storm when load rises past it, which is exactly what the
	// redundancy experiments use it to demonstrate.
	HedgeFixed time.Duration
}

// hedgeFloor is the minimum hedge delay: below this, scheduling noise
// (not provider slowness) dominates and hedging would just double load.
const hedgeFloor = 50 * time.Millisecond

func (t Tunables) withDefaults() Tunables {
	if t.MaxInFlight == 0 {
		t.MaxInFlight = 32
	}
	if t.PerCSP == 0 {
		t.PerCSP = 4
	}
	if t.PerCSP > t.MaxInFlight {
		t.PerCSP = t.MaxInFlight
	}
	if t.Attempts == 0 {
		t.Attempts = 2
	}
	if t.BaseBackoff == 0 {
		t.BaseBackoff = 25 * time.Millisecond
	}
	if t.MaxBackoff == 0 {
		t.MaxBackoff = 2 * time.Second
	}
	if t.HedgeMultiple == 0 {
		t.HedgeMultiple = 3
	}
	if t.HedgeLoadThreshold == 0 {
		t.HedgeLoadThreshold = 0.75
	}
	if t.HedgeMinSamples == 0 {
		t.HedgeMinSamples = 8
	}
	return t
}

// Config wires an Engine to its host client.
type Config struct {
	// Runtime supplies concurrency and time; required (core passes its
	// own, so production and netsim runs share this code path).
	Runtime vclock.Runtime
	// Obs receives the engine metrics (queue depth, in-flight gauges,
	// retry and hedge counters) and the per-attempt spans. nil disables
	// instrumentation.
	Obs *obs.Observer
	// Report is called once per finished attempt with the provider name,
	// the operation kind, the outcome, payload bytes, and elapsed time on
	// the Runtime clock — core points this at recordResult, keeping the
	// estimator/scoreboard/bandwidth path identical to the pre-engine
	// code. Optional.
	Report func(cspName, kind string, err error, bytes int64, elapsed time.Duration)
	// Tunables bound scheduling and retries.
	Tunables Tunables
}

// Engine schedules provider attempts. One engine per client; safe for
// concurrent use.
type Engine struct {
	rt     vclock.Runtime
	obs    *obs.Observer
	report func(cspName, kind string, err error, bytes int64, elapsed time.Duration)
	tun    Tunables
	sem    *semaphore
	hedge  *hedgeController
}

// New builds an engine. Config.Runtime is required.
func New(cfg Config) *Engine {
	if cfg.Runtime == nil {
		cfg.Runtime = vclock.Real()
	}
	tun := cfg.Tunables.withDefaults()
	return &Engine{
		rt:     cfg.Runtime,
		obs:    cfg.Obs,
		report: cfg.Report,
		tun:    tun,
		sem:    newSemaphore(cfg.Runtime, cfg.Obs, tun.MaxInFlight, tun.PerCSP),
		hedge:  newHedgeController(tun.HedgeMultiple),
	}
}

// Tunables returns the engine's effective (defaulted) tunables.
func (e *Engine) Tunables() Tunables { return e.tun }

// PeakInFlight returns the highest concurrent in-flight attempt count the
// engine has observed for one provider — the deterministic witness the
// per-CSP cap tests assert on.
func (e *Engine) PeakInFlight(cspName string) int { return e.sem.peakInFlight(cspName) }

// HedgeAfter lives in hedge.go: it converts an expected attempt latency
// into the load-adaptive hedge trigger delay for one provider.

// Attempt is one provider contact. Run performs the I/O and returns the
// payload byte count (uploads report the intended payload size even on
// failure, mirroring the pre-engine accounting). Done, when set, is
// invoked after every execution of Run — including retries — with the
// outcome; call sites use it to emit their transfer events.
type Attempt struct {
	CSP  string
	Kind string // one of core's recordResult op identifiers ("upload", "download", ...)
	Run  func(ctx context.Context) (bytes int64, err error)
	Done func(err error, bytes int64, elapsed time.Duration)
}

// Retryable classifies an attempt error: transient provider trouble
// (csp.ErrUnavailable, unclassified transport errors) is worth retrying
// on the same provider; definite answers (missing object, bad
// credentials, full provider, existing object) and context cancellation
// are not.
func Retryable(err error) bool {
	switch {
	case err == nil,
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, csp.ErrNotFound),
		errors.Is(err, csp.ErrUnauthorized),
		errors.Is(err, csp.ErrOverCapacity),
		errors.Is(err, csp.ErrExists):
		return false
	}
	return true
}

// ProviderFault reports whether an attempt error indicts the provider
// (feeding the per-operation failed set). Context cancellation says
// nothing about the provider, and a missing object is a valid answer.
func ProviderFault(err error) bool {
	switch {
	case err == nil,
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, csp.ErrNotFound):
		return false
	}
	return true
}

// Op is one client operation's view of the engine: a cancellable scope, a
// shared failed-provider set, and fan-out helpers. Create with Begin,
// release with Finish.
type Op struct {
	e      *Engine
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	failed   map[string]bool
	firstErr error
}

// Begin opens an operation scope derived from ctx.
func (e *Engine) Begin(ctx context.Context) *Op {
	cctx, cancel := context.WithCancel(ctx)
	return &Op{e: e, ctx: cctx, cancel: cancel, failed: make(map[string]bool)}
}

// Context returns the operation context; it is cancelled by Fail and
// Finish. Derive spans and pass the result to Do/Hedged so attempt spans
// nest correctly.
func (o *Op) Context() context.Context { return o.ctx }

// Finish releases the operation's context resources. Always defer it.
func (o *Op) Finish() { o.cancel() }

// Fail records the operation's first fatal error and cancels the
// operation context, aborting sibling transfers (first-error
// cancellation). Later calls keep the first error.
func (o *Op) Fail(err error) {
	if err == nil {
		return
	}
	o.mu.Lock()
	if o.firstErr == nil {
		o.firstErr = err
	}
	o.mu.Unlock()
	o.cancel()
}

// Err returns the first fatal error recorded by Fail, or nil.
func (o *Op) Err() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.firstErr
}

// MarkFailed adds a provider to the operation's failed set.
func (o *Op) MarkFailed(cspName string) {
	o.mu.Lock()
	o.failed[cspName] = true
	o.mu.Unlock()
}

// Failed reports whether a provider is in the operation's failed set.
func (o *Op) Failed(cspName string) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.failed[cspName]
}

// Each runs fn(0..n-1) concurrently on the engine's runtime and joins.
// Concurrency of the actual I/O is bounded by the engine's semaphore, not
// by the fan-out width.
func (o *Op) Each(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	g := o.e.rt.NewGroup()
	for i := 0; i < n; i++ {
		i := i
		g.Add(1)
		o.e.rt.Go(func() {
			defer g.Done()
			fn(i)
		})
	}
	g.Wait()
}

// Batch dispatches the attempts concurrently through the operation — same
// slot bounding, retry policy, and shared failed set as Do — and returns
// one error slot per attempt (nil on success). It is the fan-out primitive
// for flows that need every per-provider outcome rather than first-error
// cancellation: dedup existence probes and refcount maintenance, where a
// miss (csp.ErrNotFound) on one provider is an answer, not a failure.
func (o *Op) Batch(ctx context.Context, atts []Attempt) []error {
	errs := make([]error, len(atts))
	o.Each(len(atts), func(i int) {
		errs[i] = o.Do(ctx, atts[i])
	})
	return errs
}

// Do executes one attempt under the operation: it skips providers in the
// failed set (ErrSkipped), acquires the per-CSP and global in-flight
// slots, runs with retry/backoff per the engine's policy, reports every
// try, and on final provider-fault failure adds the provider to the
// failed set. ctx must descend from Context() (pass a span-wrapped child
// for trace nesting).
func (o *Op) Do(ctx context.Context, a Attempt) error {
	if o.Failed(a.CSP) {
		return ErrSkipped
	}
	return o.e.do(ctx, o, a)
}

func (e *Engine) do(ctx context.Context, o *Op, a Attempt) error {
	var lastErr error
	for try := 0; ; try++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return lastErr
			}
			return err
		}
		e.sem.acquire(a.CSP)
		sctx, sp := e.obs.Trace(ctx, "csp."+a.Kind)
		e.obs.AttemptStart(sctx, a.CSP, a.Kind, try)
		start := e.rt.Now()
		bytes, err := a.Run(ctx)
		elapsed := e.rt.Now().Sub(start)
		e.obs.AttemptEnd(sctx, a.CSP, a.Kind, try, bytes, elapsed, err)
		sp.End(err)
		e.sem.release(a.CSP)
		if e.report != nil {
			e.report(a.CSP, a.Kind, err, bytes, elapsed)
		}
		if a.Done != nil {
			a.Done(err, bytes, elapsed)
		}
		if err == nil {
			return nil
		}
		lastErr = err
		if !Retryable(err) || try+1 >= e.tun.Attempts || ctx.Err() != nil {
			break
		}
		e.obs.TransferRetry(ctx, a.CSP, a.Kind)
		e.rt.Sleep(e.backoff(a.CSP, a.Kind, try))
	}
	if ProviderFault(lastErr) {
		o.MarkFailed(a.CSP)
	}
	return lastErr
}

// backoff returns the delay before retry number try+1: exponential growth
// from BaseBackoff capped at MaxBackoff, with +/-25% jitter derived from
// a hash of (csp, kind, try) — deterministic, so netsim runs replay
// identically regardless of goroutine interleaving, yet decorrelated
// across providers and shares.
func (e *Engine) backoff(cspName, kind string, try int) time.Duration {
	d := e.tun.BaseBackoff << uint(try)
	if d > e.tun.MaxBackoff || d <= 0 {
		d = e.tun.MaxBackoff
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(cspName))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(kind))
	_, _ = h.Write([]byte{byte(try)})
	frac := float64(h.Sum32()) / float64(math.MaxUint32) // [0, 1]
	return time.Duration(float64(d) * (0.75 + 0.5*frac))
}

// Hedged runs a download-style attempt with sequential failover plus one
// latency hedge: the primary attempt runs under Do semantics; if it fails
// the next candidate from next() takes over; and when hedgeAfter > 0, a
// watchdog launches a single concurrent backup attempt from next() once
// hedgeAfter elapses without a result. The first success cancels the
// other lane and wins. Returns nil on any success, the last meaningful
// error when every candidate is exhausted.
//
// Both lanes run detached from the caller, which blocks only on the
// first-success latch: Hedged returns the moment either lane wins, even
// while the loser's transfer is still draining (netsim transfers are not
// interruptible mid-flight). The loser's Run may therefore execute after
// Hedged returns — callers must guard attempt side effects with their own
// mutex and snapshot shared state before consuming it.
func (o *Op) Hedged(ctx context.Context, a Attempt, hedgeAfter time.Duration, next func() (Attempt, bool)) error {
	e := o.e
	if e.tun.DisableHedge {
		hedgeAfter = 0
	}
	primaryCSP := a.CSP
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()

	var mu sync.Mutex
	var lastErr error
	success := false
	finished := false
	launched := false
	lanes := 1
	latch := e.rt.NewGroup()
	latch.Add(1)

	// pull serializes the caller's candidate source across lanes.
	pull := func() (Attempt, bool) {
		mu.Lock()
		defer mu.Unlock()
		return next()
	}

	// lane walks candidates until one succeeds or the supply runs dry.
	var lane func(first *Attempt, backup bool)
	lane = func(first *Attempt, backup bool) {
		att := first
		for {
			if hctx.Err() != nil {
				break
			}
			if att == nil {
				b, ok := pull()
				if !ok {
					break
				}
				att = &b
			}
			err := o.Do(hctx, *att)
			if err == nil {
				mu.Lock()
				if !finished {
					finished = true
					success = true
					if backup {
						// Recorded before the latch opens so the caller
						// observes the win as soon as Hedged returns.
						e.obs.TransferHedge(hctx, "win")
						e.obs.HedgeOutcome(hctx, primaryCSP, true)
						e.hedge.outcome(primaryCSP, true)
					} else if launched {
						// The backup launched but the primary won anyway:
						// the redundant request was waste. The adaptive
						// controller stretches this provider's effective
						// multiple so the next hedge fires later.
						e.obs.HedgeOutcome(hctx, primaryCSP, false)
						e.hedge.outcome(primaryCSP, false)
					}
					latch.Done()
				}
				mu.Unlock()
				hcancel()
				return
			}
			mu.Lock()
			if !errors.Is(err, context.Canceled) && !errors.Is(err, ErrSkipped) || lastErr == nil {
				lastErr = err
			}
			mu.Unlock()
			att = nil
		}
		mu.Lock()
		lanes--
		if lanes == 0 && !finished {
			finished = true
			latch.Done()
		}
		mu.Unlock()
	}

	if hedgeAfter > 0 {
		// Watchdog: fire one backup lane if nothing resolved in time. It
		// is deliberately not joined — after a win it wakes, observes
		// finished, and exits on its own.
		e.rt.Go(func() {
			e.rt.Sleep(hedgeAfter)
			mu.Lock()
			fire := !finished && !launched
			if fire {
				launched = true
				lanes++
			}
			mu.Unlock()
			if !fire {
				return
			}
			e.obs.TransferHedge(hctx, "launched")
			lane(nil, true)
		})
	}

	e.rt.Go(func() { lane(&a, false) })
	latch.Wait()

	mu.Lock()
	defer mu.Unlock()
	if success {
		return nil
	}
	if lastErr == nil {
		lastErr = ctx.Err()
	}
	if lastErr == nil {
		lastErr = errors.New("transfer: no candidate providers")
	}
	return lastErr
}
