package transfer

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/vclock"
)

// semaphore enforces the global and per-CSP in-flight caps. Waiters block
// on a fresh Runtime group (never a channel), so waiting parks correctly
// under both real goroutines and netsim virtual time. Slots are handed
// off releaser-to-waiter in FIFO order per admissibility: release scans
// the queue and admits every waiter the freed capacity now allows.
type semaphore struct {
	rt  vclock.Runtime
	obs *obs.Observer

	mu         sync.Mutex
	globalCap  int
	globalUsed int
	perCap     int
	used       map[string]int
	peak       map[string]int
	waiters    []semWaiter
}

type semWaiter struct {
	csp string
	g   vclock.Group
}

func newSemaphore(rt vclock.Runtime, o *obs.Observer, globalCap, perCap int) *semaphore {
	return &semaphore{
		rt:        rt,
		obs:       o,
		globalCap: globalCap,
		perCap:    perCap,
		used:      make(map[string]int),
		peak:      make(map[string]int),
	}
}

// admitLocked reserves a slot if both caps allow. Caller holds mu.
func (s *semaphore) admitLocked(cspName string) bool {
	if s.globalUsed >= s.globalCap || s.used[cspName] >= s.perCap {
		return false
	}
	s.globalUsed++
	s.used[cspName]++
	if s.used[cspName] > s.peak[cspName] {
		s.peak[cspName] = s.used[cspName]
		s.obs.TransferInFlightPeak(cspName, s.peak[cspName])
	}
	s.obs.TransferInFlight(cspName, s.used[cspName])
	return true
}

// acquire blocks until a slot for cspName is available.
func (s *semaphore) acquire(cspName string) {
	s.mu.Lock()
	if s.admitLocked(cspName) {
		s.mu.Unlock()
		return
	}
	g := s.rt.NewGroup()
	g.Add(1)
	s.waiters = append(s.waiters, semWaiter{csp: cspName, g: g})
	s.obs.TransferQueueDepth(len(s.waiters))
	s.mu.Unlock()
	g.Wait()
}

// release frees a slot and wakes every waiter the new capacity admits.
func (s *semaphore) release(cspName string) {
	s.mu.Lock()
	s.globalUsed--
	s.used[cspName]--
	s.obs.TransferInFlight(cspName, s.used[cspName])
	for i := 0; i < len(s.waiters); {
		w := s.waiters[i]
		if !s.admitLocked(w.csp) {
			i++
			continue
		}
		s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
		w.g.Done()
	}
	s.obs.TransferQueueDepth(len(s.waiters))
	s.mu.Unlock()
}

// inFlight returns the current in-flight count for one provider (tests).
func (s *semaphore) inFlight(cspName string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used[cspName]
}

// peakInFlight returns the high-water in-flight count for one provider.
func (s *semaphore) peakInFlight(cspName string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peak[cspName]
}
