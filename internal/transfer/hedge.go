package transfer

import (
	"context"
	"sync"
	"time"
)

// Load-adaptive hedge scheduling: the actuator half of the redundancy
// control loop (ROADMAP item 5). The sensors live in obs/loadstats.go —
// per-CSP in-flight, global admission-queue depth, and the scoreboard's
// latency EWMA. This file closes the loop:
//
//	loadstats ──► HedgeAfter ──► hedge watchdog (Op.Hedged) / race extras
//	                 ▲                   │
//	                 └── hedgeController ┘  (win/loss feedback)
//
// Three decisions are made per hedge, in order. (1) Arming: a provider
// whose EWMA was fed by fewer than HedgeMinSamples successes does not
// hedge at all — a cold estimate seeded from one fast sample would fire a
// hedge storm. (2) Suppression: past the Ghosh crossover (queue depth or
// provider saturation over HedgeLoadThreshold) redundancy is withheld
// entirely, because an extra request would join the congestion it is
// dodging. (3) Deadline: the trigger delay is the per-CSP effective
// multiple times the predicted completion under current load,
// expected x (1 + in-flight), not the open-loop HedgeMultiple x EWMA.
// Every input is a deterministic function of recorded transfer events, so
// netsim runs replay identically.

const (
	// hedgeWinDecay shrinks a provider's effective multiple after a backup
	// win: hedges against it are paying off, fire a little earlier.
	hedgeWinDecay = 0.85
	// hedgeLossGrowth stretches the multiple after a wasted hedge (backup
	// launched, primary won anyway): back off before redundancy feeds load.
	hedgeLossGrowth = 1.25
	// hedgeMultMinFrac / hedgeMultMaxFrac bound the effective multiple to
	// [base x min, base x max] so a burst of one outcome cannot pin the
	// controller at an extreme.
	hedgeMultMinFrac = 0.5
	hedgeMultMaxFrac = 4.0
)

// hedgeController auto-tunes the effective hedge multiple per provider
// from observed hedge outcomes. Movements are fixed multiplicative steps
// on win/loss events only, so the state is a deterministic fold over the
// outcome sequence.
type hedgeController struct {
	mu   sync.Mutex
	base float64
	per  map[string]float64
}

func newHedgeController(base float64) *hedgeController {
	return &hedgeController{base: base, per: make(map[string]float64)}
}

// multiple returns the provider's current effective hedge multiple.
func (h *hedgeController) multiple(cspName string) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if m, ok := h.per[cspName]; ok {
		return m
	}
	return h.base
}

// outcome folds one resolved hedge in.
func (h *hedgeController) outcome(cspName string, win bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.per[cspName]
	if !ok {
		m = h.base
	}
	if win {
		m *= hedgeWinDecay
		if lo := h.base * hedgeMultMinFrac; m < lo {
			m = lo
		}
	} else {
		m *= hedgeLossGrowth
		if hi := h.base * hedgeMultMaxFrac; m > hi {
			m = hi
		}
	}
	h.per[cspName] = m
}

// HedgeMultipleFor returns the effective (adaptively tuned) hedge multiple
// currently in force for one provider — observability for tests and tools.
func (e *Engine) HedgeMultipleFor(cspName string) float64 { return e.hedge.multiple(cspName) }

// HedgeAfter converts an expected attempt latency into the hedge trigger
// delay for one provider, or 0 when no hedge should arm: hedging disabled,
// expectation unknown, the provider's EWMA not yet fed by HedgeMinSamples
// successes (cold start), or load past the Ghosh crossover (suppression —
// counted in cyrus_hedge_suppressed_total). With HedgeFixed set the
// constant delay is returned verbatim; with HedgeStatic set, or with
// no observer to read load from, the open-loop HedgeMultiple x expected
// deadline is returned instead. Callers treat 0 as "sequential failover
// only". ctx is only used to stamp flight-recorder events.
func (e *Engine) HedgeAfter(ctx context.Context, cspName string, expected time.Duration) time.Duration {
	if e.tun.DisableHedge {
		return 0
	}
	if e.tun.HedgeFixed > 0 {
		return e.tun.HedgeFixed
	}
	if expected <= 0 {
		return 0
	}
	if e.tun.HedgeStatic || e.obs == nil {
		return clampHedge(time.Duration(e.tun.HedgeMultiple * float64(expected)))
	}
	if e.tun.HedgeMinSamples > 0 && e.obs.Health().Samples(cspName) < int64(e.tun.HedgeMinSamples) {
		e.obs.HedgeSuppressed(ctx, cspName, "cold")
		return 0
	}
	load, _ := e.obs.CurrentLoad(cspName)
	if e.overloaded(load.QueueDepth) {
		e.obs.HedgeSuppressed(ctx, cspName, "load")
		return 0
	}
	// Predicted completion under current load: the expectation stacked
	// behind the attempts already in flight at this provider.
	predicted := float64(expected) * float64(1+load.InFlight)
	return clampHedge(time.Duration(e.hedge.multiple(cspName) * predicted))
}

// clampHedge floors the trigger delay: below hedgeFloor, scheduling noise
// (not provider slowness) dominates and hedging would just double load.
func clampHedge(d time.Duration) time.Duration {
	if d < hedgeFloor {
		return hedgeFloor
	}
	return d
}

// overloaded is the Ghosh crossover test against the live load vector:
// true once the global admission queue reaches HedgeLoadThreshold of the
// in-flight capacity. The signal is deliberately global, not per-CSP — a
// redundant request costs a global slot and lands on a *different*
// provider than the slow primary, so a saturated primary is an argument
// for hedging away from it, while a saturated engine means the hedge
// would only join the queue it is trying to beat.
func (e *Engine) overloaded(queue int) bool {
	thr := e.tun.HedgeLoadThreshold
	if thr < 0 {
		return false
	}
	return float64(queue) >= thr*float64(e.tun.MaxInFlight)
}

// LoadPermits reports whether launching a purely redundant attempt against
// the provider is currently sound — the gate race-read extras and tools
// consult. An empty provider name checks only the global queue signal.
// True without an observer (no load signal, assume idle).
func (e *Engine) LoadPermits(cspName string) bool {
	if e.obs == nil || e.tun.HedgeStatic || e.tun.HedgeFixed > 0 {
		return true
	}
	queue := e.obs.QueueDepthNow()
	if cspName != "" {
		if s, ok := e.obs.CurrentLoad(cspName); ok {
			queue = s.QueueDepth
		}
	}
	return !e.overloaded(queue)
}

// HedgeState reports why the engine would currently withhold a hedge
// against the provider: "off" (hedging disabled), "cold" (not yet armed by
// enough latency samples), "load" (past the utilization crossover), or ""
// when a hedge would arm. `cyrusctl top` renders this as the per-provider
// suppression indicator.
func (e *Engine) HedgeState(cspName string) string {
	switch {
	case e.tun.DisableHedge:
		return "off"
	case e.tun.HedgeStatic || e.tun.HedgeFixed > 0 || e.obs == nil:
		return ""
	case e.tun.HedgeMinSamples > 0 && e.obs.Health().Samples(cspName) < int64(e.tun.HedgeMinSamples):
		return "cold"
	}
	load, _ := e.obs.CurrentLoad(cspName)
	if e.overloaded(load.QueueDepth) {
		return "load"
	}
	return ""
}
