package transfer

import (
	"context"
	"testing"
	"time"

	"repro/internal/csp"
	"repro/internal/obs"
)

// warm feeds n successful contacts into the observer's scoreboard so the
// provider's EWMA is armed with the given latency.
func warm(o *obs.Observer, cspName string, n int, latency time.Duration) {
	for i := 0; i < n; i++ {
		o.CSPRequest(cspName, nil, latency)
	}
}

// TestHedgeColdStartArming is the cold-start hedge-storm regression: a
// provider whose EWMA was seeded by a single anomalously fast sample must
// not arm hedging until HedgeMinSamples successes have been observed.
func TestHedgeColdStartArming(t *testing.T) {
	ctx := context.Background()
	o := obs.NewObserver()
	e, _ := newSimEngine(Tunables{HedgeMinSamples: 4}, o)

	// One fast sample: the pre-fix engine would hedge off this EWMA.
	warm(o, "cspa", 1, time.Millisecond)
	if got := e.HedgeAfter(ctx, "cspa", 100*time.Millisecond); got != 0 {
		t.Fatalf("cold provider armed a hedge: HedgeAfter = %v, want 0", got)
	}
	if st := e.HedgeState("cspa"); st != "cold" {
		t.Fatalf("HedgeState = %q, want cold", st)
	}
	p, ok := o.Registry().Snapshot().Find(obs.MetricHedgeSuppressed, map[string]string{"csp": "cspa", "reason": "cold"})
	if !ok || p.Value < 1 {
		t.Fatalf("hedge_suppressed{cspa,cold} = %v %v, want >= 1", p.Value, ok)
	}

	warm(o, "cspa", 3, time.Millisecond)
	if got := e.HedgeAfter(ctx, "cspa", 100*time.Millisecond); got == 0 {
		t.Fatal("provider with HedgeMinSamples successes did not arm")
	}
	if st := e.HedgeState("cspa"); st != "" {
		t.Fatalf("armed provider HedgeState = %q, want \"\"", st)
	}
}

// TestHedgeLoadSuppression: once the global admission queue crosses
// HedgeLoadThreshold x MaxInFlight, hedges are withheld (Ghosh's
// crossover) and counted; redundant race lanes are refused too.
func TestHedgeLoadSuppression(t *testing.T) {
	ctx := context.Background()
	o := obs.NewObserver()
	e, _ := newSimEngine(Tunables{MaxInFlight: 8, HedgeMinSamples: 1}, o)
	warm(o, "cspa", 8, 10*time.Millisecond)

	if got := e.HedgeAfter(ctx, "cspa", 100*time.Millisecond); got == 0 {
		t.Fatal("idle engine suppressed a hedge")
	}
	o.TransferQueueDepth(6) // 6 >= 0.75 x 8
	if got := e.HedgeAfter(ctx, "cspa", 100*time.Millisecond); got != 0 {
		t.Fatalf("overloaded engine armed a hedge: HedgeAfter = %v, want 0", got)
	}
	if st := e.HedgeState("cspa"); st != "load" {
		t.Fatalf("HedgeState = %q, want load", st)
	}
	if e.LoadPermits("cspa") {
		t.Fatal("LoadPermits = true past the crossover")
	}
	p, ok := o.Registry().Snapshot().Find(obs.MetricHedgeSuppressed, map[string]string{"csp": "cspa", "reason": "load"})
	if !ok || p.Value < 1 {
		t.Fatalf("hedge_suppressed{cspa,load} = %v %v, want >= 1", p.Value, ok)
	}

	o.TransferQueueDepth(0)
	if got := e.HedgeAfter(ctx, "cspa", 100*time.Millisecond); got == 0 {
		t.Fatal("drained engine still suppressed")
	}

	// Negative threshold disables suppression entirely.
	off, _ := newSimEngine(Tunables{MaxInFlight: 8, HedgeLoadThreshold: -1, HedgeMinSamples: 1}, o)
	o.TransferQueueDepth(8)
	if got := off.HedgeAfter(ctx, "cspa", 100*time.Millisecond); got == 0 {
		t.Fatal("HedgeLoadThreshold<0 did not disable suppression")
	}
	o.TransferQueueDepth(0)
}

// TestHedgeDeadlineTracksLoad: the trigger delay scales with the
// provider's in-flight attempts — expected x (1 + inFlight), the Ghosh
// predicted completion — instead of the open-loop EWMA multiple.
func TestHedgeDeadlineTracksLoad(t *testing.T) {
	ctx := context.Background()
	o := obs.NewObserver()
	e, _ := newSimEngine(Tunables{HedgeMultiple: 3, HedgeMinSamples: 1}, o)
	warm(o, "cspa", 4, 10*time.Millisecond)

	idle := e.HedgeAfter(ctx, "cspa", 100*time.Millisecond)
	if idle != 300*time.Millisecond {
		t.Fatalf("idle deadline = %v, want 300ms", idle)
	}
	o.TransferInFlight("cspa", 3)
	loaded := e.HedgeAfter(ctx, "cspa", 100*time.Millisecond)
	if loaded != 4*idle {
		t.Fatalf("deadline under 3 in flight = %v, want %v", loaded, 4*idle)
	}
	o.TransferInFlight("cspa", 0)

	// HedgeStatic restores the open-loop deadline regardless of load.
	st, _ := newSimEngine(Tunables{HedgeMultiple: 3, HedgeStatic: true}, o)
	o.TransferInFlight("cspa", 3)
	if got := st.HedgeAfter(ctx, "cspa", 100*time.Millisecond); got != 300*time.Millisecond {
		t.Fatalf("static deadline = %v, want 300ms", got)
	}
	o.TransferInFlight("cspa", 0)
}

// TestHedgeAdaptiveMultiple: wins shrink a provider's effective multiple,
// losses stretch it, and both respect the [base/2, base x 4] bounds.
func TestHedgeAdaptiveMultiple(t *testing.T) {
	h := newHedgeController(3)
	if got := h.multiple("cspa"); got != 3 {
		t.Fatalf("fresh multiple = %v, want base 3", got)
	}
	h.outcome("cspa", true)
	if got := h.multiple("cspa"); got >= 3 {
		t.Fatalf("multiple after a win = %v, want < 3", got)
	}
	for i := 0; i < 100; i++ {
		h.outcome("cspa", true)
	}
	if got := h.multiple("cspa"); got != 1.5 {
		t.Fatalf("win-saturated multiple = %v, want floor 1.5", got)
	}
	for i := 0; i < 100; i++ {
		h.outcome("cspa", false)
	}
	if got := h.multiple("cspa"); got != 12 {
		t.Fatalf("loss-saturated multiple = %v, want cap 12", got)
	}
	if got := h.multiple("cspb"); got != 3 {
		t.Fatalf("untouched provider multiple = %v, want base 3", got)
	}
}

// TestHedgeOutcomeAccounting: a backup win and a wasted hedge both feed
// the per-CSP win/loss counters and move the adaptive multiple.
func TestHedgeOutcomeAccounting(t *testing.T) {
	o := obs.NewObserver()
	e, nw := newSimEngine(Tunables{Attempts: 1}, o)
	o.SetClock(nw.Now)

	nw.Run(func() {
		op := e.Begin(context.Background())
		defer op.Finish()

		// Slow primary, fast backup: the backup wins.
		slow := Attempt{CSP: "slowcsp", Kind: "download", Run: func(ctx context.Context) (int64, error) {
			nw.Sleep(500 * time.Millisecond)
			return 1, nil
		}}
		backup := func() (Attempt, bool) {
			return sleepAttempt(nw, "fastcsp", time.Millisecond), true
		}
		if err := op.Hedged(op.Context(), slow, 10*time.Millisecond, backup); err != nil {
			t.Errorf("hedged (backup wins): %v", err)
		}

		// Fast primary, slow backup: the hedge launches and is wasted.
		fast := sleepAttempt(nw, "okcsp", 50*time.Millisecond)
		slowBackup := func() (Attempt, bool) {
			return sleepAttempt(nw, "slowcsp", time.Second), true
		}
		if err := op.Hedged(op.Context(), fast, 10*time.Millisecond, slowBackup); err != nil {
			t.Errorf("hedged (primary wins): %v", err)
		}
	})

	s := o.Registry().Snapshot()
	if p, ok := s.Find(obs.MetricHedgeWins, map[string]string{"csp": "slowcsp"}); !ok || p.Value != 1 {
		t.Errorf("hedge_wins{slowcsp} = %v %v, want 1", p.Value, ok)
	}
	if p, ok := s.Find(obs.MetricHedgeLosses, map[string]string{"csp": "okcsp"}); !ok || p.Value != 1 {
		t.Errorf("hedge_losses{okcsp} = %v %v, want 1", p.Value, ok)
	}
	if got, base := e.HedgeMultipleFor("slowcsp"), 3.0; got >= base {
		t.Errorf("winner's primary multiple = %v, want < %v", got, base)
	}
	if got, base := e.HedgeMultipleFor("okcsp"), 3.0; got <= base {
		t.Errorf("loser's primary multiple = %v, want > %v", got, base)
	}
}

// TestRaceQuorum: a 2-of-3 race resolves on the second success, losers
// drain afterwards, and late completions are accounted as cancelled-byte
// waste.
func TestRaceQuorum(t *testing.T) {
	o := obs.NewObserver()
	e, nw := newSimEngine(Tunables{Attempts: 1}, o)
	o.SetClock(nw.Now)

	att := func(name string, d time.Duration, bytes int64) Attempt {
		return Attempt{CSP: name, Kind: "download", Run: func(ctx context.Context) (int64, error) {
			nw.Sleep(d)
			return bytes, nil
		}}
	}
	var resolved time.Duration
	nw.Run(func() {
		op := e.Begin(context.Background())
		defer op.Finish()
		start := nw.Now()
		atts := []Attempt{
			att("cspa", 10*time.Millisecond, 100),
			att("cspb", 20*time.Millisecond, 100),
			att("cspc", 500*time.Millisecond, 100),
		}
		if err := op.Race(op.Context(), atts, 2, 0, nil); err != nil {
			t.Errorf("race: %v", err)
		}
		resolved = nw.Now().Sub(start)
		// Let the loser drain so its waste is recorded.
		nw.Sleep(time.Second)
	})

	if resolved > 100*time.Millisecond {
		t.Errorf("race resolved after %v, want ~20ms (did it wait for the loser?)", resolved)
	}
	s := o.Registry().Snapshot()
	if p, ok := s.Find(obs.MetricRaceCancelledBytes, map[string]string{"csp": "cspc"}); !ok || p.Value != 100 {
		t.Errorf("race_cancelled_bytes{cspc} = %v %v, want 100", p.Value, ok)
	}
}

// TestRaceRedundantLane: extra lanes pull from the candidate supply at
// t=0, are counted as launched, and let the race survive a primary that
// never answers usefully.
func TestRaceRedundantLane(t *testing.T) {
	o := obs.NewObserver()
	e, nw := newSimEngine(Tunables{Attempts: 1}, o)
	o.SetClock(nw.Now)

	nw.Run(func() {
		op := e.Begin(context.Background())
		defer op.Finish()
		atts := []Attempt{
			sleepAttempt(nw, "cspa", 10*time.Millisecond),
			{CSP: "deadcsp", Kind: "download", Run: func(ctx context.Context) (int64, error) {
				return 0, csp.ErrUnavailable
			}},
		}
		served := false
		next := func() (Attempt, bool) {
			if served {
				return Attempt{}, false
			}
			served = true
			return sleepAttempt(nw, "cspb", 15*time.Millisecond), true
		}
		if err := op.Race(op.Context(), atts, 2, 1, next); err != nil {
			t.Errorf("race with redundant lane: %v", err)
		}
	})

	s := o.Registry().Snapshot()
	if p, ok := s.Find(obs.MetricRaceLaunched, map[string]string{"csp": "cspb"}); !ok || p.Value != 1 {
		t.Errorf("race_launched{cspb} = %v %v, want 1", p.Value, ok)
	}
}

// TestRaceExhaustion: fewer successes than the quorum yields the last
// meaningful provider error.
func TestRaceExhaustion(t *testing.T) {
	e, nw := newSimEngine(Tunables{Attempts: 1}, nil)
	nw.Run(func() {
		op := e.Begin(context.Background())
		defer op.Finish()
		atts := []Attempt{
			sleepAttempt(nw, "cspa", time.Millisecond),
			{CSP: "deadcsp", Kind: "download", Run: func(ctx context.Context) (int64, error) {
				return 0, csp.ErrUnavailable
			}},
		}
		err := op.Race(op.Context(), atts, 2, 0, func() (Attempt, bool) { return Attempt{}, false })
		if err == nil {
			t.Error("race below quorum returned nil")
		}
	})
}

// TestRaceSuppressedExtras: past the load crossover, redundant lanes are
// not launched — the race degrades to the primary fan-out.
func TestRaceSuppressedExtras(t *testing.T) {
	o := obs.NewObserver()
	e, nw := newSimEngine(Tunables{MaxInFlight: 8, Attempts: 1}, o)
	o.SetClock(nw.Now)
	o.TransferQueueDepth(6) // past 0.75 x 8

	nw.Run(func() {
		op := e.Begin(context.Background())
		defer op.Finish()
		atts := []Attempt{sleepAttempt(nw, "cspa", time.Millisecond)}
		err := op.Race(op.Context(), atts, 1, 2, func() (Attempt, bool) {
			return sleepAttempt(nw, "cspb", time.Millisecond), true
		})
		if err != nil {
			t.Errorf("race: %v", err)
		}
	})
	o.TransferQueueDepth(0)

	if p, ok := o.Registry().Snapshot().Find(obs.MetricRaceLaunched, map[string]string{"csp": "cspb"}); ok && p.Value != 0 {
		t.Errorf("race_launched{cspb} = %v under load, want 0", p.Value)
	}
}
