package transfer

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/csp"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/vclock"
)

// newSimEngine builds an engine on a fresh netsim network so every test in
// this file runs under deterministic virtual time.
func newSimEngine(tun Tunables, o *obs.Observer) (*Engine, *netsim.Network) {
	nw := netsim.New(time.Time{})
	e := New(Config{Runtime: nw, Obs: o, Tunables: tun})
	return e, nw
}

// sleepAttempt returns an attempt whose Run just spends d of virtual time.
func sleepAttempt(rt vclock.Runtime, cspName string, d time.Duration) Attempt {
	return Attempt{
		CSP:  cspName,
		Kind: "download",
		Run: func(ctx context.Context) (int64, error) {
			rt.Sleep(d)
			return 1, nil
		},
	}
}

func TestTunablesDefaults(t *testing.T) {
	tun := Tunables{}.withDefaults()
	if tun.MaxInFlight != 32 || tun.PerCSP != 4 || tun.Attempts != 2 {
		t.Fatalf("unexpected defaults: %+v", tun)
	}
	if tun.BaseBackoff != 25*time.Millisecond || tun.MaxBackoff != 2*time.Second {
		t.Fatalf("unexpected backoff defaults: %+v", tun)
	}
	clamped := Tunables{MaxInFlight: 2, PerCSP: 10}.withDefaults()
	if clamped.PerCSP != 2 {
		t.Fatalf("PerCSP not clamped to MaxInFlight: %+v", clamped)
	}
}

func TestClassifiers(t *testing.T) {
	wrapped := fmt.Errorf("csp: upload x: %w", csp.ErrUnavailable)
	cases := []struct {
		err       error
		retryable bool
		fault     bool
	}{
		{nil, false, false},
		{context.Canceled, false, false},
		{context.DeadlineExceeded, false, false},
		{csp.ErrNotFound, false, false},
		{csp.ErrUnauthorized, false, true},
		{csp.ErrOverCapacity, false, true},
		{csp.ErrExists, false, true},
		{csp.ErrUnavailable, true, true},
		{wrapped, true, true},
		{errors.New("connection reset"), true, true},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.retryable {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.retryable)
		}
		if got := ProviderFault(c.err); got != c.fault {
			t.Errorf("ProviderFault(%v) = %v, want %v", c.err, got, c.fault)
		}
	}
}

// TestCapsBound: fan out far wider than the caps and verify the semaphore
// held both the per-CSP and the global in-flight ceilings, while still
// letting every attempt through.
func TestCapsBound(t *testing.T) {
	e, nw := newSimEngine(Tunables{MaxInFlight: 5, PerCSP: 2}, nil)

	var mu sync.Mutex
	cur, peak := 0, 0
	done := 0
	const width = 24
	csps := []string{"cspa", "cspb", "cspc"}

	nw.Run(func() {
		op := e.Begin(context.Background())
		defer op.Finish()
		op.Each(width, func(i int) {
			name := csps[i%len(csps)]
			err := op.Do(op.Context(), Attempt{
				CSP:  name,
				Kind: "upload",
				Run: func(ctx context.Context) (int64, error) {
					mu.Lock()
					cur++
					if cur > peak {
						peak = cur
					}
					mu.Unlock()
					nw.Sleep(10 * time.Millisecond)
					mu.Lock()
					cur--
					done++
					mu.Unlock()
					return 1, nil
				},
			})
			if err != nil {
				t.Errorf("attempt %d: %v", i, err)
			}
		})
	})

	if done != width {
		t.Fatalf("completed %d of %d attempts", done, width)
	}
	if peak > 5 {
		t.Errorf("global in-flight peak %d exceeds cap 5", peak)
	}
	if peak < 2 {
		t.Errorf("global in-flight peak %d: no concurrency at all", peak)
	}
	for _, name := range csps {
		if p := e.PeakInFlight(name); p > 2 {
			t.Errorf("per-CSP peak for %s = %d exceeds cap 2", name, p)
		} else if p == 0 {
			t.Errorf("per-CSP peak for %s = 0: provider never ran", name)
		}
	}
}

// TestRetryBackoff: one transient failure retries after the deterministic
// backoff delay and then succeeds; Report sees both tries.
func TestRetryBackoff(t *testing.T) {
	var reports []string
	nw := netsim.New(time.Time{})
	e := New(Config{
		Runtime: nw,
		Report: func(cspName, kind string, err error, bytes int64, elapsed time.Duration) {
			reports = append(reports, fmt.Sprintf("%s/%s err=%v", cspName, kind, err != nil))
		},
		Tunables: Tunables{Attempts: 3, BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second},
	})

	tries := 0
	var elapsed time.Duration
	nw.Run(func() {
		op := e.Begin(context.Background())
		defer op.Finish()
		start := nw.Now()
		err := op.Do(op.Context(), Attempt{
			CSP:  "cspa",
			Kind: "upload",
			Run: func(ctx context.Context) (int64, error) {
				tries++
				if tries == 1 {
					return 0, csp.ErrUnavailable
				}
				return 1, nil
			},
		})
		elapsed = nw.Now().Sub(start)
		if err != nil {
			t.Errorf("Do: %v", err)
		}
	})

	if tries != 2 {
		t.Fatalf("tries = %d, want 2", tries)
	}
	want := e.backoff("cspa", "upload", 0)
	if elapsed != want {
		t.Errorf("virtual elapsed %v, want exactly the try-0 backoff %v", elapsed, want)
	}
	if len(reports) != 2 || reports[0] != "cspa/upload err=true" || reports[1] != "cspa/upload err=false" {
		t.Errorf("reports = %v, want failed try then success", reports)
	}
}

// TestNonRetryableStops: a definite answer (NotFound) is returned at once
// without burning further attempts, and does not poison the failed set.
func TestNonRetryableStops(t *testing.T) {
	e, nw := newSimEngine(Tunables{Attempts: 3}, nil)
	tries := 0
	nw.Run(func() {
		op := e.Begin(context.Background())
		defer op.Finish()
		err := op.Do(op.Context(), Attempt{
			CSP:  "cspa",
			Kind: "download",
			Run: func(ctx context.Context) (int64, error) {
				tries++
				return 0, csp.ErrNotFound
			},
		})
		if !errors.Is(err, csp.ErrNotFound) {
			t.Errorf("err = %v, want ErrNotFound", err)
		}
		if op.Failed("cspa") {
			t.Error("NotFound must not mark the provider failed")
		}
	})
	if tries != 1 {
		t.Fatalf("tries = %d, want 1 (no retry of a definite answer)", tries)
	}
}

// TestBackoffDeterministic: the jittered backoff is a pure function of
// (csp, kind, try) — equal across engines, unequal across providers.
func TestBackoffDeterministic(t *testing.T) {
	e1, _ := newSimEngine(Tunables{}, nil)
	e2, _ := newSimEngine(Tunables{}, nil)
	for try := 0; try < 4; try++ {
		a := e1.backoff("cspa", "upload", try)
		b := e2.backoff("cspa", "upload", try)
		if a != b {
			t.Errorf("try %d: backoff differs across engines: %v vs %v", try, a, b)
		}
		base := e1.tun.BaseBackoff << uint(try)
		if base > e1.tun.MaxBackoff {
			base = e1.tun.MaxBackoff
		}
		lo := time.Duration(float64(base) * 0.75)
		hi := time.Duration(float64(base) * 1.25)
		if a < lo || a > hi {
			t.Errorf("try %d: backoff %v outside jitter window [%v, %v]", try, a, lo, hi)
		}
	}
	if e1.backoff("cspa", "upload", 0) == e1.backoff("cspb", "upload", 0) {
		t.Error("jitter should decorrelate providers (hash collision would be a red flag)")
	}
}

// TestFailedSetSkips: once a provider burns its retries, sibling attempts
// of the same operation get ErrSkipped without invoking Run again.
func TestFailedSetSkips(t *testing.T) {
	e, nw := newSimEngine(Tunables{Attempts: 2, BaseBackoff: time.Millisecond}, nil)
	runs := 0
	nw.Run(func() {
		op := e.Begin(context.Background())
		defer op.Finish()
		err := op.Do(op.Context(), Attempt{
			CSP:  "cspa",
			Kind: "upload",
			Run: func(ctx context.Context) (int64, error) {
				runs++
				return 0, csp.ErrUnavailable
			},
		})
		if !errors.Is(err, csp.ErrUnavailable) {
			t.Errorf("first Do: %v", err)
		}
		if !op.Failed("cspa") {
			t.Fatal("provider not in failed set after exhausting retries")
		}
		err = op.Do(op.Context(), Attempt{
			CSP:  "cspa",
			Kind: "upload",
			Run: func(ctx context.Context) (int64, error) {
				runs++
				return 1, nil
			},
		})
		if !errors.Is(err, ErrSkipped) {
			t.Errorf("second Do = %v, want ErrSkipped", err)
		}
	})
	if runs != 2 {
		t.Fatalf("runs = %d, want 2 (both from the first Do's retries)", runs)
	}

	// A different op on the same engine starts with a clean slate.
	nw.Run(func() {
		op := e.Begin(context.Background())
		defer op.Finish()
		if op.Failed("cspa") {
			t.Error("failed set leaked across operations")
		}
	})
}

// TestFailCancelsSiblings: Op.Fail cancels the operation context so
// in-flight sibling attempts observe cancellation instead of finishing
// doomed work (the Put wasted-work bug).
func TestFailCancelsSiblings(t *testing.T) {
	e, nw := newSimEngine(Tunables{Attempts: 1}, nil)
	var sawCancel bool
	nw.Run(func() {
		op := e.Begin(context.Background())
		defer op.Finish()
		op.Each(2, func(i int) {
			if i == 0 {
				nw.Sleep(5 * time.Millisecond)
				op.Fail(errors.New("fatal chunk error"))
				return
			}
			err := op.Do(op.Context(), Attempt{
				CSP:  "cspb",
				Kind: "upload",
				Run: func(ctx context.Context) (int64, error) {
					// Poll like a netsim transfer loop would between rounds.
					for j := 0; j < 100; j++ {
						if ctx.Err() != nil {
							sawCancel = true
							return 0, ctx.Err()
						}
						nw.Sleep(time.Millisecond)
					}
					return 1, nil
				},
			})
			if !errors.Is(err, context.Canceled) {
				t.Errorf("sibling err = %v, want context.Canceled", err)
			}
		})
		if op.Err() == nil {
			t.Error("op.Err() lost the first fatal error")
		}
	})
	if !sawCancel {
		t.Error("sibling never observed cancellation")
	}
}

// TestDoAfterCancelReturnsPromptly: an attempt issued after the op context
// is cancelled does not run at all.
func TestDoAfterCancelReturnsPromptly(t *testing.T) {
	e, nw := newSimEngine(Tunables{}, nil)
	nw.Run(func() {
		op := e.Begin(context.Background())
		op.Fail(errors.New("boom"))
		defer op.Finish()
		ran := false
		err := op.Do(op.Context(), Attempt{
			CSP:  "cspa",
			Kind: "upload",
			Run: func(ctx context.Context) (int64, error) {
				ran = true
				return 1, nil
			},
		})
		if err == nil {
			t.Error("Do after cancel returned nil")
		}
		if ran {
			t.Error("Run executed under a cancelled op")
		}
	})
}

// TestHedgeWin: a slow primary trips the watchdog, the backup lane wins,
// and the hedge counters record both the launch and the win.
func TestHedgeWin(t *testing.T) {
	o := obs.NewObserver()
	e, nw := newSimEngine(Tunables{Attempts: 1}, o)
	o.SetClock(nw.Now)

	var winner string
	nw.Run(func() {
		op := e.Begin(context.Background())
		defer op.Finish()
		primary := Attempt{
			CSP:  "slowcsp",
			Kind: "download",
			Run: func(ctx context.Context) (int64, error) {
				nw.Sleep(2 * time.Second) // way past the hedge trigger
				if ctx.Err() != nil {
					return 0, ctx.Err()
				}
				winner = "slowcsp"
				return 1, nil
			},
		}
		backups := []string{"fastcsp"}
		next := func() (Attempt, bool) {
			if len(backups) == 0 {
				return Attempt{}, false
			}
			name := backups[0]
			backups = backups[1:]
			return Attempt{
				CSP:  name,
				Kind: "download",
				Run: func(ctx context.Context) (int64, error) {
					nw.Sleep(10 * time.Millisecond)
					winner = name
					return 1, nil
				},
			}, true
		}
		start := nw.Now()
		if err := op.Hedged(op.Context(), primary, 100*time.Millisecond, next); err != nil {
			t.Errorf("Hedged: %v", err)
		}
		if got := nw.Now().Sub(start); got >= 2*time.Second {
			t.Errorf("hedged download took %v — waited for the slow primary", got)
		}
	})

	if winner != "fastcsp" {
		t.Fatalf("winner = %q, want the hedge lane", winner)
	}
	s := o.Registry().Snapshot()
	if p, ok := s.Find(obs.MetricTransferHedges, map[string]string{"result": "launched"}); !ok || p.Value != 1 {
		t.Errorf("hedges_total{result=launched} = %+v (found=%v), want 1", p, ok)
	}
	if p, ok := s.Find(obs.MetricTransferHedges, map[string]string{"result": "win"}); !ok || p.Value != 1 {
		t.Errorf("hedges_total{result=win} = %+v (found=%v), want 1", p, ok)
	}
}

// TestHedgeNotLaunchedWhenFast: a primary that beats the trigger keeps the
// backup lane parked.
func TestHedgeNotLaunchedWhenFast(t *testing.T) {
	o := obs.NewObserver()
	e, nw := newSimEngine(Tunables{Attempts: 1}, o)
	o.SetClock(nw.Now)

	nw.Run(func() {
		op := e.Begin(context.Background())
		defer op.Finish()
		pulled := false
		err := op.Hedged(op.Context(), sleepAttempt(nw, "cspa", 10*time.Millisecond), 500*time.Millisecond,
			func() (Attempt, bool) {
				pulled = true
				return Attempt{}, false
			})
		if err != nil {
			t.Errorf("Hedged: %v", err)
		}
		// Let the watchdog timer expire and observe finished.
		nw.Sleep(time.Second)
		if pulled {
			t.Error("backup candidate pulled although the primary was fast")
		}
	})

	s := o.Registry().Snapshot()
	if p, ok := s.Find(obs.MetricTransferHedges, map[string]string{"result": "launched"}); ok && p.Value != 0 {
		t.Errorf("hedges_total{result=launched} = %v, want 0", p.Value)
	}
}

// TestHedgeSequentialFailover: with hedging disabled the walk degrades to
// ordered failover and still finds the good provider.
func TestHedgeSequentialFailover(t *testing.T) {
	e, nw := newSimEngine(Tunables{Attempts: 1, DisableHedge: true}, nil)
	var order []string
	nw.Run(func() {
		op := e.Begin(context.Background())
		defer op.Finish()
		bad := Attempt{
			CSP:  "deadcsp",
			Kind: "download",
			Run: func(ctx context.Context) (int64, error) {
				order = append(order, "deadcsp")
				return 0, csp.ErrUnavailable
			},
		}
		candidates := []string{"alsodead", "goodcsp"}
		next := func() (Attempt, bool) {
			if len(candidates) == 0 {
				return Attempt{}, false
			}
			name := candidates[0]
			candidates = candidates[1:]
			return Attempt{
				CSP:  name,
				Kind: "download",
				Run: func(ctx context.Context) (int64, error) {
					order = append(order, name)
					if name == "goodcsp" {
						return 1, nil
					}
					return 0, csp.ErrUnavailable
				},
			}, true
		}
		if err := op.Hedged(op.Context(), bad, e.HedgeAfter(op.Context(), "deadcsp", time.Millisecond), next); err != nil {
			t.Errorf("Hedged: %v", err)
		}
	})
	want := []string{"deadcsp", "alsodead", "goodcsp"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("failover order = %v, want %v", order, want)
	}
}

// TestHedgeAllFail: when every lane exhausts, the last meaningful error
// comes back (not a cancellation artifact).
func TestHedgeAllFail(t *testing.T) {
	e, nw := newSimEngine(Tunables{Attempts: 1}, nil)
	nw.Run(func() {
		op := e.Begin(context.Background())
		defer op.Finish()
		bad := func(name string) Attempt {
			return Attempt{CSP: name, Kind: "download", Run: func(ctx context.Context) (int64, error) {
				return 0, fmt.Errorf("read %s: %w", name, csp.ErrUnavailable)
			}}
		}
		served := false
		err := op.Hedged(op.Context(), bad("cspa"), 0, func() (Attempt, bool) {
			if served {
				return Attempt{}, false
			}
			served = true
			return bad("cspb"), true
		})
		if !errors.Is(err, csp.ErrUnavailable) {
			t.Errorf("err = %v, want a provider error", err)
		}
	})
}

// TestHedgeAfter converts expected latency into trigger delays. Without
// an observer there is no load signal, so the engine takes the open-loop
// HedgeMultiple path.
func TestHedgeAfter(t *testing.T) {
	ctx := context.Background()
	e, _ := newSimEngine(Tunables{HedgeMultiple: 3}, nil)
	if got := e.HedgeAfter(ctx, "cspa", 0); got != 0 {
		t.Errorf("unknown expectation: HedgeAfter(0) = %v, want 0", got)
	}
	if got := e.HedgeAfter(ctx, "cspa", 100*time.Millisecond); got != 300*time.Millisecond {
		t.Errorf("HedgeAfter(100ms) = %v, want 300ms", got)
	}
	if got := e.HedgeAfter(ctx, "cspa", time.Millisecond); got != hedgeFloor {
		t.Errorf("HedgeAfter(1ms) = %v, want the %v floor", got, hedgeFloor)
	}
	off, _ := newSimEngine(Tunables{DisableHedge: true}, nil)
	if got := off.HedgeAfter(ctx, "cspa", time.Second); got != 0 {
		t.Errorf("disabled engine: HedgeAfter = %v, want 0", got)
	}
}

// TestQueueMetrics: saturating one provider records queue depth and the
// in-flight peak gauge through obs.
func TestQueueMetrics(t *testing.T) {
	o := obs.NewObserver()
	e, nw := newSimEngine(Tunables{MaxInFlight: 8, PerCSP: 1}, o)
	o.SetClock(nw.Now)

	nw.Run(func() {
		op := e.Begin(context.Background())
		defer op.Finish()
		op.Each(4, func(i int) {
			if err := op.Do(op.Context(), sleepAttempt(nw, "cspa", 5*time.Millisecond)); err != nil {
				t.Errorf("attempt %d: %v", i, err)
			}
		})
	})

	if p := e.PeakInFlight("cspa"); p != 1 {
		t.Errorf("peak in-flight = %d, want 1 under PerCSP=1", p)
	}
	s := o.Registry().Snapshot()
	if p, ok := s.Find(obs.MetricTransferInFlightPeak, map[string]string{"csp": "cspa"}); !ok || p.Value != 1 {
		t.Errorf("inflight_peak gauge = %+v (found=%v), want 1", p, ok)
	}
	// Queue drained by the end.
	if p, ok := s.Find(obs.MetricTransferQueueDepth, nil); !ok || p.Value != 0 {
		t.Errorf("queue depth = %+v (found=%v), want 0 after drain", p, ok)
	}
}

// TestDeterministicReplay: the same fan-out over an engine on two fresh
// netsim networks finishes at the identical virtual instant — the property
// every latency experiment depends on. Arrivals are staggered to distinct
// virtual instants: netsim runs same-instant goroutines concurrently in
// real time, so when heterogeneous jobs contend for slots at the very same
// instant their admission order is scheduler-dependent by design; the
// engine's determinism contract is deterministic arrivals in, deterministic
// completion out.
func TestDeterministicReplay(t *testing.T) {
	run := func() time.Duration {
		e, nw := newSimEngine(Tunables{MaxInFlight: 4, PerCSP: 2, BaseBackoff: 20 * time.Millisecond}, nil)
		var elapsed time.Duration
		nw.Run(func() {
			op := e.Begin(context.Background())
			defer op.Finish()
			start := nw.Now()
			op.Each(9, func(i int) {
				nw.Sleep(time.Duration(i) * time.Millisecond)
				name := fmt.Sprintf("csp%d", i%3)
				fails := i%2 == 0
				tries := 0
				_ = op.Do(op.Context(), Attempt{
					CSP:  name,
					Kind: "upload",
					Run: func(ctx context.Context) (int64, error) {
						tries++
						nw.Sleep(time.Duration(3+i) * time.Millisecond)
						if fails && tries == 1 {
							return 0, csp.ErrUnavailable
						}
						return 1, nil
					},
				})
			})
			elapsed = nw.Now().Sub(start)
		})
		return elapsed
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("replay diverged: %v vs %v", a, b)
	}
	if a == 0 {
		t.Error("scenario consumed no virtual time")
	}
}

// TestEngineRace exercises the semaphore, failed set, and hedging under the
// real runtime so `go test -race` can catch data races.
func TestEngineRace(t *testing.T) {
	o := obs.NewObserver()
	e := New(Config{
		Runtime: vclock.Real(),
		Obs:     o,
		Report:  func(string, string, error, int64, time.Duration) {},
		Tunables: Tunables{
			MaxInFlight: 8, PerCSP: 2, Attempts: 2,
			BaseBackoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond,
		},
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			op := e.Begin(context.Background())
			defer op.Finish()
			op.Each(16, func(i int) {
				name := fmt.Sprintf("csp%d", (w+i)%4)
				att := Attempt{
					CSP:  name,
					Kind: "upload",
					Run: func(ctx context.Context) (int64, error) {
						if i%5 == 0 {
							return 0, csp.ErrUnavailable
						}
						return 32, nil
					},
					Done: func(error, int64, time.Duration) {},
				}
				if i%3 == 0 {
					fallback := sleepAttempt(vclock.Real(), "cspf", 0)
					_ = op.Hedged(op.Context(), att, 50*time.Microsecond, func() (Attempt, bool) {
						return fallback, true
					})
				} else {
					_ = op.Do(op.Context(), att)
				}
			})
		}()
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("csp%d", i)
		if p := e.PeakInFlight(name); p > 2 {
			t.Errorf("per-CSP peak for %s = %d exceeds cap 2 under load", name, p)
		}
	}
}

// Batch returns one error slot per attempt: successes, not-found probes,
// and skips land in their own slots instead of collapsing to a first
// error, and a provider-fault failure still feeds the shared failed set
// so later attempts against that provider are skipped.
func TestBatchPerAttemptOutcomes(t *testing.T) {
	e, nw := newSimEngine(Tunables{Attempts: 1}, nil)

	var errs []error
	nw.Run(func() {
		op := e.Begin(context.Background())
		defer op.Finish()
		op.MarkFailed("cspdown")
		errs = op.Batch(op.Context(), []Attempt{
			{CSP: "cspa", Kind: "ref", Run: func(ctx context.Context) (int64, error) { return 0, nil }},
			{CSP: "cspb", Kind: "ref", Run: func(ctx context.Context) (int64, error) { return 0, csp.ErrNotFound }},
			{CSP: "cspdown", Kind: "ref", Run: func(ctx context.Context) (int64, error) { return 0, nil }},
			{CSP: "cspc", Kind: "ref", Run: func(ctx context.Context) (int64, error) { return 0, csp.ErrUnavailable }},
		})
		// The fault on cspc marked it failed; a follow-up batch skips it.
		follow := op.Batch(op.Context(), []Attempt{
			{CSP: "cspc", Kind: "ref", Run: func(ctx context.Context) (int64, error) { return 0, nil }},
		})
		errs = append(errs, follow...)
	})

	if errs[0] != nil {
		t.Errorf("slot 0 = %v, want nil", errs[0])
	}
	if !errors.Is(errs[1], csp.ErrNotFound) {
		t.Errorf("slot 1 = %v, want ErrNotFound", errs[1])
	}
	if !errors.Is(errs[2], ErrSkipped) {
		t.Errorf("slot 2 = %v, want ErrSkipped", errs[2])
	}
	if !errors.Is(errs[3], csp.ErrUnavailable) {
		t.Errorf("slot 3 = %v, want ErrUnavailable", errs[3])
	}
	if !errors.Is(errs[4], ErrSkipped) {
		t.Errorf("slot 4 = %v, want ErrSkipped after provider fault", errs[4])
	}
}
