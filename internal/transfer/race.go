package transfer

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Race runs a k-out-of-n gather: every attempt in atts gets its own lane
// (Do semantics — slot bounding, retries, the operation's shared failed
// set), plus up to extra purely redundant lanes recruited from next() the
// moment the race starts, load permitting. Each lane walks candidates
// until one succeeds or the supply runs dry; the race resolves as soon as
// `need` lanes have succeeded, cancelling the rest. Candidates normally
// carry distinct payloads (erasure shares), so successes accumulate —
// need is the decode quorum, not a retry count.
//
// Redundant lanes are the race-read analogue of a hedge fired at t=0:
// they buy tail latency with extra load, so they are withheld entirely
// when the engine is past the Ghosh crossover (see HedgeAfter). Lanes
// launched are counted in cyrus_race_launched_total; payload bytes
// completed by losers after the race resolved — transfers cancellation
// could not reach — are pure redundancy waste, accounted in
// cyrus_race_cancelled_bytes_total.
//
// Like Hedged, lanes run detached: Race returns the moment the quorum
// lands, while losers may still be draining. A loser's Run can therefore
// execute after Race returns — callers must guard attempt side effects
// with their own mutex and snapshot shared state before consuming it.
//
// Returns nil once need successes landed; otherwise the last meaningful
// candidate error (or the context error) after every lane dried up.
func (o *Op) Race(ctx context.Context, atts []Attempt, need, extra int, next func() (Attempt, bool)) error {
	e := o.e
	if need <= 0 {
		return nil
	}
	rctx, rcancel := context.WithCancel(ctx)
	defer rcancel()

	var mu sync.Mutex
	var lastErr error
	successes := 0
	finished := false
	latch := e.rt.NewGroup()
	latch.Add(1)

	// Redundant lanes only launch while global utilization leaves room for
	// them; "" consults the global queue signal without pinning a provider.
	if extra > 0 && !e.LoadPermits("") {
		extra = 0
	}
	lanes := len(atts) + extra

	// pull serializes the caller's candidate cursor across lanes.
	pull := func() (Attempt, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next == nil {
			return Attempt{}, false
		}
		return next()
	}

	lane := func(first *Attempt, redundant bool) {
		defer func() {
			mu.Lock()
			lanes--
			if lanes == 0 && !finished {
				finished = true
				latch.Done()
			}
			mu.Unlock()
		}()
		att := first
		for {
			mu.Lock()
			done := finished
			mu.Unlock()
			if done || rctx.Err() != nil {
				return
			}
			if att == nil {
				b, ok := pull()
				if !ok {
					return
				}
				att = &b
			}
			// Wrap Done to capture the payload size of a successful Run,
			// so a win landing after the race resolved can be accounted
			// as cancelled-byte waste.
			run := *att
			var gotBytes int64
			prevDone := run.Done
			run.Done = func(err error, bytes int64, elapsed time.Duration) {
				if err == nil {
					mu.Lock()
					gotBytes = bytes
					mu.Unlock()
				}
				if prevDone != nil {
					prevDone(err, bytes, elapsed)
				}
			}
			if redundant {
				e.obs.RaceLaunched(rctx, run.CSP)
			}
			err := o.Do(rctx, run)
			if err == nil {
				mu.Lock()
				late := finished
				resolved := false
				if !finished {
					successes++
					if successes >= need {
						finished = true
						resolved = true
						latch.Done()
					}
				}
				waste := gotBytes
				mu.Unlock()
				if late {
					e.obs.RaceCancelledBytes(rctx, run.CSP, waste)
				} else if resolved {
					rcancel()
				}
				return
			}
			mu.Lock()
			if (!errors.Is(err, context.Canceled) && !errors.Is(err, ErrSkipped)) || lastErr == nil {
				lastErr = err
			}
			mu.Unlock()
			att = nil
		}
	}

	for i := range atts {
		att := atts[i]
		e.rt.Go(func() { lane(&att, false) })
	}
	for i := 0; i < extra; i++ {
		e.rt.Go(func() { lane(nil, true) })
	}
	latch.Wait()

	mu.Lock()
	defer mu.Unlock()
	if successes >= need {
		return nil
	}
	if lastErr == nil {
		lastErr = ctx.Err()
	}
	if lastErr == nil {
		lastErr = errors.New("transfer: race exhausted candidates")
	}
	return lastErr
}
