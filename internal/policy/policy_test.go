package policy

import (
	"strings"
	"testing"
	"time"
)

func testClasses() []Class {
	return []Class{
		{Name: "hot", Tier: TierHot, T: 2, N: 4, CSPs: []string{"a", "b", "c", "d"},
			DemoteAfter: time.Hour, DemoteTo: "cold"},
		{Name: "cold", Tier: TierCold, T: 3, N: 8},
		{Name: "meta-dedicated", MetaCSPs: []string{"a", "b"}},
	}
}

func TestResolvePrecedence(t *testing.T) {
	rules := []Rule{
		{Prefix: "logs/", Class: "cold"},
		{Prefix: "logs/urgent/", Class: "hot"},
		{Prefix: "tmp/", Class: ""},
	}
	e, err := NewEngine(testClasses(), rules, "hot")
	if err != nil {
		t.Fatal(err)
	}

	// Override beats everything.
	c, err := e.Resolve("logs/app.log", "cold")
	if err != nil || c.Name != "cold" {
		t.Fatalf("override: got %q, %v", c.Name, err)
	}
	// Longest prefix wins over shorter.
	c, _ = e.Resolve("logs/urgent/now.log", "")
	if c.Name != "hot" {
		t.Fatalf("longest prefix: got %q, want hot", c.Name)
	}
	c, _ = e.Resolve("logs/app.log", "")
	if c.Name != "cold" {
		t.Fatalf("prefix: got %q, want cold", c.Name)
	}
	// A rule can route to the default class explicitly.
	c, _ = e.Resolve("tmp/x", "")
	if c.Name != "" {
		t.Fatalf("rule to default: got %q, want \"\"", c.Name)
	}
	// No rule: the configured default applies.
	c, _ = e.Resolve("photo.jpg", "")
	if c.Name != "hot" {
		t.Fatalf("default: got %q, want hot", c.Name)
	}
	// Unknown override is an error, never a silent fallback.
	if _, err := e.Resolve("x", "nope"); err == nil {
		t.Fatal("unknown override must error")
	}
}

func TestResolveNilAndEmptyEngine(t *testing.T) {
	// A nil engine (no classes configured) resolves everything to the
	// implicit default class — the pre-class behavior.
	var e *Engine
	c, err := e.Resolve("anything", "")
	if err != nil || c.Name != "" {
		t.Fatalf("nil engine: got %q, %v", c.Name, err)
	}
	if _, err := e.Resolve("anything", "hot"); err == nil {
		t.Fatal("nil engine must reject overrides")
	}

	e2, err := NewEngine(nil, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	c, err = e2.Resolve("anything", "")
	if err != nil || c.Name != "" {
		t.Fatalf("empty engine: got %q, %v", c.Name, err)
	}
}

func TestEngineValidation(t *testing.T) {
	cases := []struct {
		name    string
		classes []Class
		rules   []Rule
		def     string
		wantErr string
	}{
		{"reserved name", []Class{{Name: ""}}, nil, "", "reserved"},
		{"duplicate", []Class{{Name: "x"}, {Name: "x"}}, nil, "", "duplicate"},
		{"bad tier", []Class{{Name: "x", Tier: "warm"}}, nil, "", "tier"},
		{"bad tn", []Class{{Name: "x", T: 3, N: 2}}, nil, "", "(t,n)"},
		{"demote unknown", []Class{{Name: "x", DemoteAfter: time.Hour, DemoteTo: "y"}}, nil, "", "unknown class"},
		{"demote self", []Class{{Name: "x", DemoteAfter: time.Hour, DemoteTo: "x"}}, nil, "", "itself"},
		{"demote no target", []Class{{Name: "x", DemoteAfter: time.Hour}}, nil, "", "DemoteTo"},
		{"rule unknown class", nil, []Rule{{Prefix: "a/", Class: "x"}}, "", "unknown class"},
		{"rule empty prefix", nil, []Rule{{Prefix: "", Class: ""}}, "", "empty prefix"},
		{"default unknown", nil, nil, "x", "not configured"},
	}
	for _, tc := range cases {
		_, err := NewEngine(tc.classes, tc.rules, tc.def)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestClassesSortedAndDefaultClass(t *testing.T) {
	e, err := NewEngine(testClasses(), nil, "")
	if err != nil {
		t.Fatal(err)
	}
	got := e.Classes()
	if len(got) != 3 || got[0].Name != "cold" || got[1].Name != "hot" || got[2].Name != "meta-dedicated" {
		t.Fatalf("Classes() order: %v", got)
	}
	// The default tier is filled in.
	if got[2].Tier != TierHot {
		t.Fatalf("default tier not applied: %q", got[2].Tier)
	}
	// The "" class is always resolvable and hot-tier.
	c, ok := e.Class("")
	if !ok || c.Tier != TierHot || c.Name != "" {
		t.Fatalf("default Class() = %+v, %v", c, ok)
	}
}
