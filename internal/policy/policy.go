// Package policy implements CYRUS storage classes and the per-object class
// resolution engine (ROADMAP item 4; DESIGN.md §13).
//
// A storage class bundles one client-defined trade-off point between
// privacy, reliability, cost, and speed: a CSP subset to scatter to,
// per-class (t, n) or an Epsilon reliability bound, chunking parameters,
// a tier label, and an optional lifecycle rule (demote to a colder class
// after an idle TTL). The engine resolves the class for each object with
// explicit precedence:
//
//	per-request override  >  longest matching per-prefix rule  >  default
//
// The default class is the empty name "": it means "exactly the client's
// pre-class behavior" — client-level (t, n)/Epsilon, all providers, the
// client chunker — and is what every record written before storage classes
// existed implicitly belongs to. Resolution is pure and deterministic: the
// same (name, override) against the same engine always yields the same
// class, so concurrent clients sharing one configuration agree on
// placement without coordination.
package policy

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/chunker"
)

// Tier labels. Tiers are descriptive (they drive reporting and the
// lifecycle scanner's defaults), not behavioral: all behavior lives in the
// class's explicit knobs.
const (
	TierHot  = "hot"
	TierCold = "cold"
)

// Class is one storage class definition.
type Class struct {
	// Name identifies the class in rules, per-request overrides, and the
	// per-chunk metadata. "" is reserved for the implicit default class.
	Name string `json:"name"`
	// Tier is TierHot or TierCold (default TierHot).
	Tier string `json:"tier,omitempty"`
	// T is the per-class privacy level; 0 inherits the client's T.
	T int `json:"t,omitempty"`
	// N is the per-class share count; 0 derives it from Epsilon (or the
	// client's N/Epsilon when Epsilon is also zero).
	N int `json:"n,omitempty"`
	// Epsilon is the per-class reliability bound used to derive N when N
	// is zero.
	Epsilon float64 `json:"epsilon,omitempty"`
	// CSPs restricts chunk shares to this provider subset; empty = all
	// providers the client has.
	CSPs []string `json:"csps,omitempty"`
	// MetaCSPs dedicates metadata-record placement to this provider
	// subset (the ROADMAP item 3 headroom); empty = the client's normal
	// metadata placement (all providers or the MetaShards ring).
	MetaCSPs []string `json:"meta_csps,omitempty"`
	// Chunking overrides the client's chunking parameters for fresh
	// writes in this class; a zero value inherits the client chunker.
	Chunking chunker.Config `json:"chunking"`
	// DemoteAfter is the idle TTL before the lifecycle migrator demotes
	// an object of this class; 0 = never demote.
	DemoteAfter time.Duration `json:"demote_after,omitempty"`
	// DemoteTo names the class demoted objects are re-encoded into.
	DemoteTo string `json:"demote_to,omitempty"`
}

// HasChunking reports whether the class overrides the client chunker.
func (c Class) HasChunking() bool { return c.Chunking.AverageSize > 0 }

// Rule maps an object-name prefix to a class.
type Rule struct {
	Prefix string `json:"prefix"`
	Class  string `json:"class"`
}

// Engine resolves storage classes for object names.
type Engine struct {
	classes map[string]Class
	rules   []Rule // longest prefix first; ties by definition order
	def     string
}

// NewEngine validates the configuration and builds a resolution engine.
// The default class name "" (the implicit pre-class behavior) is always
// known; defaultClass may name a configured class instead.
func NewEngine(classes []Class, rules []Rule, defaultClass string) (*Engine, error) {
	e := &Engine{classes: make(map[string]Class, len(classes)), def: defaultClass}
	for _, c := range classes {
		if c.Name == "" {
			return nil, fmt.Errorf("policy: class name %q is reserved for the default class", c.Name)
		}
		if strings.ContainsRune(c.Name, 0) {
			return nil, fmt.Errorf("policy: class name contains NUL")
		}
		if _, dup := e.classes[c.Name]; dup {
			return nil, fmt.Errorf("policy: duplicate class %q", c.Name)
		}
		switch c.Tier {
		case "":
			c.Tier = TierHot
		case TierHot, TierCold:
		default:
			return nil, fmt.Errorf("policy: class %q: unknown tier %q", c.Name, c.Tier)
		}
		if c.T < 0 || c.N < 0 || (c.T > 0 && c.N > 0 && c.N < c.T) {
			return nil, fmt.Errorf("policy: class %q: bad (t,n)=(%d,%d)", c.Name, c.T, c.N)
		}
		if c.DemoteAfter < 0 {
			return nil, fmt.Errorf("policy: class %q: negative DemoteAfter", c.Name)
		}
		if c.DemoteAfter > 0 && c.DemoteTo == "" {
			return nil, fmt.Errorf("policy: class %q: DemoteAfter set without DemoteTo", c.Name)
		}
		if c.DemoteTo == c.Name && c.Name != "" {
			return nil, fmt.Errorf("policy: class %q demotes to itself", c.Name)
		}
		e.classes[c.Name] = c
	}
	for _, c := range classes {
		if c.DemoteTo != "" {
			if _, ok := e.classes[c.DemoteTo]; !ok {
				return nil, fmt.Errorf("policy: class %q demotes to unknown class %q", c.Name, c.DemoteTo)
			}
		}
	}
	if defaultClass != "" {
		if _, ok := e.classes[defaultClass]; !ok {
			return nil, fmt.Errorf("policy: default class %q not configured", defaultClass)
		}
	}
	for i, r := range rules {
		if r.Prefix == "" {
			return nil, fmt.Errorf("policy: rule %d: empty prefix (set the default class instead)", i)
		}
		if _, ok := e.classes[r.Class]; !ok && r.Class != "" {
			return nil, fmt.Errorf("policy: rule %q -> unknown class %q", r.Prefix, r.Class)
		}
	}
	// Longest prefix first so Resolve can take the first match; the sort is
	// stable, so equal-length prefixes keep their definition order.
	e.rules = append([]Rule(nil), rules...)
	sort.SliceStable(e.rules, func(i, j int) bool {
		return len(e.rules[i].Prefix) > len(e.rules[j].Prefix)
	})
	return e, nil
}

// Resolve picks the storage class for an object, with precedence
// per-request override > longest matching prefix rule > default class.
// An override naming an unconfigured class is an error (a typo must not
// silently fall back to a different redundancy level).
func (e *Engine) Resolve(name, override string) (Class, error) {
	if override != "" {
		c, ok := e.Class(override)
		if !ok {
			return Class{}, fmt.Errorf("policy: unknown class override %q", override)
		}
		return c, nil
	}
	if e != nil {
		for _, r := range e.rules {
			if strings.HasPrefix(name, r.Prefix) {
				c, _ := e.Class(r.Class)
				return c, nil
			}
		}
	}
	c, _ := e.Class(e.DefaultClass())
	return c, nil
}

// Class returns a configured class by name. The default name "" always
// resolves to the zero Class (pre-class client behavior).
func (e *Engine) Class(name string) (Class, bool) {
	if name == "" {
		return Class{Tier: TierHot}, true
	}
	if e == nil {
		return Class{}, false
	}
	c, ok := e.classes[name]
	return c, ok
}

// Classes returns the configured classes sorted by name.
func (e *Engine) Classes() []Class {
	if e == nil {
		return nil
	}
	out := make([]Class, 0, len(e.classes))
	for _, c := range e.classes {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Rules returns the resolution rules, longest prefix first.
func (e *Engine) Rules() []Rule {
	if e == nil {
		return nil
	}
	return append([]Rule(nil), e.rules...)
}

// DefaultClass returns the name of the class objects fall into when no
// override or rule applies.
func (e *Engine) DefaultClass() string {
	if e == nil {
		return ""
	}
	return e.def
}
