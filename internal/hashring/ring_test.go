package hashring

import (
	"errors"
	"fmt"
	"testing"
)

func ringWith(t *testing.T, nodes ...string) *Ring {
	t.Helper()
	r := New(0)
	for _, n := range nodes {
		if err := r.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestAddRemoveContains(t *testing.T) {
	r := ringWith(t, "a", "b")
	if !r.Contains("a") || !r.Contains("b") || r.Contains("c") {
		t.Fatal("membership wrong after Add")
	}
	if err := r.Add("a"); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate Add err = %v", err)
	}
	if err := r.Remove("c"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Remove unknown err = %v", err)
	}
	if err := r.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if r.Contains("a") || r.Len() != 1 {
		t.Fatal("membership wrong after Remove")
	}
}

func TestSelectNDistinctAndDeterministic(t *testing.T) {
	r := ringWith(t, "a", "b", "c", "d", "e")
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("chunk-%d", i)
		got, err := r.SelectN(key, 3)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, n := range got {
			if seen[n] {
				t.Fatalf("key %q: duplicate node %q", key, n)
			}
			seen[n] = true
		}
		again, err := r.SelectN(key, 3)
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != again[j] {
				t.Fatalf("key %q: selection not deterministic", key)
			}
		}
	}
}

func TestSelectNErrors(t *testing.T) {
	empty := New(0)
	if _, err := empty.SelectN("k", 1); !errors.Is(err, ErrEmptyRing) {
		t.Fatalf("empty ring err = %v", err)
	}
	r := ringWith(t, "a", "b")
	if _, err := r.SelectN("k", 3); !errors.Is(err, ErrNotEnough) {
		t.Fatalf("too-many err = %v", err)
	}
	if _, err := r.SelectN("k", 0); err == nil {
		t.Fatal("SelectN(0) did not error")
	}
}

func TestBalance(t *testing.T) {
	nodes := []string{"a", "b", "c", "d", "e", "f", "g"}
	r := ringWith(t, nodes...)
	counts := map[string]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		p, err := r.Primary(fmt.Sprintf("key-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		counts[p]++
	}
	mean := float64(keys) / float64(len(nodes))
	for n, c := range counts {
		if float64(c) < 0.5*mean || float64(c) > 1.5*mean {
			t.Errorf("node %q owns %d keys, mean %.0f — imbalanced", n, c, mean)
		}
	}
}

// TestMinimalRemap verifies consistent hashing's defining property: adding a
// node moves only ~1/N of the keyspace; removing a node only remaps keys it
// owned.
func TestMinimalRemap(t *testing.T) {
	nodes := []string{"a", "b", "c", "d", "e"}
	r := ringWith(t, nodes...)
	const keys = 10000
	before := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		p, err := r.Primary(k)
		if err != nil {
			t.Fatal(err)
		}
		before[k] = p
	}

	if err := r.Add("f"); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for k, old := range before {
		p, err := r.Primary(k)
		if err != nil {
			t.Fatal(err)
		}
		if p != old {
			if p != "f" {
				t.Fatalf("key %q moved from %q to %q, not to the new node", k, old, p)
			}
			moved++
		}
	}
	// Expect ~1/6 of keys to move; tolerate 8%..28%.
	if moved < keys*8/100 || moved > keys*28/100 {
		t.Errorf("adding a node moved %d of %d keys; expected about %d", moved, keys, keys/6)
	}

	// Removal remaps only the removed node's keys.
	if err := r.Remove("f"); err != nil {
		t.Fatal(err)
	}
	for k, old := range before {
		p, err := r.Primary(k)
		if err != nil {
			t.Fatal(err)
		}
		if p != old {
			t.Fatalf("key %q changed owner (%q -> %q) after add+remove round trip", k, old, p)
		}
	}
}

func TestSelectClustered(t *testing.T) {
	r := ringWith(t, "dropbox", "bitcasa", "s3", "gdrive", "box")
	clusters := map[string]string{
		"dropbox": "amazon",
		"bitcasa": "amazon",
		"s3":      "amazon",
		"gdrive":  "google",
		// box: unknown -> singleton
	}
	for i := 0; i < 200; i++ {
		got, err := r.SelectClustered(fmt.Sprintf("c%d", i), 3, clusters)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, n := range got {
			c, ok := clusters[n]
			if !ok {
				c = n
			}
			if seen[c] {
				t.Fatalf("key c%d: two nodes from cluster %q in %v", i, c, got)
			}
			seen[c] = true
		}
	}
	// Only 3 clusters exist (amazon, google, box): asking for 4 must fail.
	if _, err := r.SelectClustered("k", 4, clusters); !errors.Is(err, ErrNotEnough) {
		t.Fatalf("over-constrained selection err = %v", err)
	}
}

func TestSelectClusteredPartialResultOnErr(t *testing.T) {
	r := ringWith(t, "a", "b")
	clusters := map[string]string{"a": "p", "b": "p"}
	got, err := r.SelectClustered("k", 2, clusters)
	if !errors.Is(err, ErrNotEnough) {
		t.Fatalf("err = %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("partial result has %d nodes, want 1", len(got))
	}
}

func TestNodesSorted(t *testing.T) {
	r := ringWith(t, "zeta", "alpha", "mid")
	got := r.Nodes()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes() = %v, want %v", got, want)
		}
	}
}

func BenchmarkSelectN(b *testing.B) {
	r := New(0)
	for i := 0; i < 20; i++ {
		if err := r.Add(fmt.Sprintf("csp-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.SelectN(fmt.Sprintf("chunk-%d", i), 4); err != nil {
			b.Fatal(err)
		}
	}
}
