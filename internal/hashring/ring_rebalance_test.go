package hashring

import (
	"fmt"
	"testing"
)

// TestRebalanceBound pins the guarantee the metadata shard-epoch migration
// relies on: adding or removing one node changes the primary owner of at
// most ~2·K/n of K keys, and disturbs the m-replica shard set of at most
// ~2·K·m/n keys. If this bound regresses, a ring-membership change would
// force re-placing far more metadata records than the migrate path budgets
// for.
func TestRebalanceBound(t *testing.T) {
	const (
		keys = 10000
		m    = 3
	)
	nodes := []string{"cspa", "cspb", "cspc", "cspd", "cspe", "cspf", "cspg", "csph"}
	n := len(nodes)
	r := ringWith(t, nodes...)

	key := func(i int) string { return fmt.Sprintf("file-%d.dat", i) }
	primBefore := make([]string, keys)
	setBefore := make([][]string, keys)
	for i := 0; i < keys; i++ {
		p, err := r.Primary(key(i))
		if err != nil {
			t.Fatal(err)
		}
		primBefore[i] = p
		s, err := r.SelectN(key(i), m)
		if err != nil {
			t.Fatal(err)
		}
		setBefore[i] = s
	}

	check := func(label string, bound int, changed int) {
		t.Helper()
		if changed > bound {
			t.Errorf("%s: %d of %d keys changed, bound %d", label, changed, keys, bound)
		}
	}
	countChanged := func() (prim, set int) {
		t.Helper()
		for i := 0; i < keys; i++ {
			p, err := r.Primary(key(i))
			if err != nil {
				t.Fatal(err)
			}
			if p != primBefore[i] {
				prim++
			}
			s, err := r.SelectN(key(i), m)
			if err != nil {
				t.Fatal(err)
			}
			for j := range s {
				if s[j] != setBefore[i][j] {
					set++
					break
				}
			}
		}
		return prim, set
	}

	if err := r.Add("cspi"); err != nil {
		t.Fatal(err)
	}
	prim, set := countChanged()
	check("add: primary moves", 2*keys/n, prim)
	check("add: shard-set disturbance", 2*keys*m/n, set)

	if err := r.Add("cspi"); err == nil {
		t.Fatal("re-Add did not error")
	}
	if err := r.Remove("cspi"); err != nil {
		t.Fatal(err)
	}
	prim, set = countChanged()
	if prim != 0 || set != 0 {
		t.Fatalf("add+remove round trip remapped %d primaries, %d shard sets; want 0", prim, set)
	}

	if err := r.Remove("cspa"); err != nil {
		t.Fatal(err)
	}
	prim, set = countChanged()
	check("remove: primary moves", 2*keys/n, prim)
	check("remove: shard-set disturbance", 2*keys*m/n, set)
}

// TestInsertionOrderIndependence verifies that two rings with the same
// membership built by different Add sequences produce identical selections.
// Without the (hash, node) tie-break in Add's sort, equal-hash vnodes would
// keep insertion order and the rings could disagree.
func TestInsertionOrderIndependence(t *testing.T) {
	fwd := ringWith(t, "a", "b", "c", "d", "e")
	rev := ringWith(t, "e", "d", "c", "b", "a")
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%d", i)
		x, err := fwd.SelectN(k, 3)
		if err != nil {
			t.Fatal(err)
		}
		y, err := rev.SelectN(k, 3)
		if err != nil {
			t.Fatal(err)
		}
		for j := range x {
			if x[j] != y[j] {
				t.Fatalf("key %q: forward ring %v, reverse ring %v", k, x, y)
			}
		}
	}
}

// TestEqualHashTieBreak forces a vnode hash collision (unreachable through
// SHA-1 alone) and checks Add's re-sort orders the colliding vnodes by node
// name, making the clockwise walk deterministic.
func TestEqualHashTieBreak(t *testing.T) {
	r := New(1)
	if err := r.Add("z"); err != nil {
		t.Fatal(err)
	}
	// Inject two vnodes sharing a hash, deliberately in reverse name order.
	r.vnodes = append(r.vnodes, vnode{42, "b"}, vnode{42, "a"})
	r.nodes["a"], r.nodes["b"] = true, true
	// Adding another member re-sorts the whole vnode slice.
	if err := r.Add("y"); err != nil {
		t.Fatal(err)
	}
	var at42 []string
	for _, v := range r.vnodes {
		if v.hash == 42 {
			at42 = append(at42, v.node)
		}
	}
	if len(at42) != 2 || at42[0] != "a" || at42[1] != "b" {
		t.Fatalf("colliding vnodes ordered %v, want [a b]", at42)
	}
}
