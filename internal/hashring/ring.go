// Package hashring implements consistent hashing for CYRUS's uplink CSP
// selection (paper §5.3).
//
// Chunk share placement maps the SHA-1 of the chunk content onto a ring
// partitioned among CSPs via virtual nodes; the first n distinct CSPs
// encountered clockwise receive the shares. Consistent hashing balances
// stored data across CSPs and minimizes share reallocation when CSPs are
// added or removed.
//
// The ring also supports cluster-constrained selection: when CSP platform
// clusters are known (internal/topology), SelectClustered returns at most
// one CSP per cluster, so correlated platform failures cannot take out two
// shares of one chunk (paper §4.1).
package hashring

import (
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// DefaultReplicas is the default number of virtual nodes per CSP. Enough
// for good balance across tens of CSPs while keeping the ring small.
const DefaultReplicas = 128

// Errors returned by selection.
var (
	ErrEmptyRing    = errors.New("hashring: ring has no nodes")
	ErrNotEnough    = errors.New("hashring: not enough distinct nodes")
	ErrDuplicate    = errors.New("hashring: node already present")
	ErrUnknownNode  = errors.New("hashring: node not present")
	ErrBadReplicas  = errors.New("hashring: replicas must be positive")
	ErrNoneEligible = errors.New("hashring: no eligible nodes")
)

type vnode struct {
	hash uint64
	node string
}

// Ring is a consistent hash ring over named nodes (CSP identifiers).
// It is safe for concurrent use.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	vnodes   []vnode // sorted by hash
	nodes    map[string]bool
}

// New returns an empty ring with the given number of virtual nodes per
// member; replicas <= 0 selects DefaultReplicas.
func New(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, nodes: make(map[string]bool)}
}

// hashKey maps an arbitrary string to a ring position.
func hashKey(s string) uint64 {
	sum := sha1.Sum([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a node. It returns ErrDuplicate if the node is already a
// member.
func (r *Ring) Add(node string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return fmt.Errorf("%w: %q", ErrDuplicate, node)
	}
	r.nodes[node] = true
	for i := 0; i < r.replicas; i++ {
		r.vnodes = append(r.vnodes, vnode{hashKey(fmt.Sprintf("%s#%d", node, i)), node})
	}
	// Tie-break equal hashes by node name so the vnode order — and hence
	// SelectN's walk order — is a pure function of membership, not of the
	// sequence of Add calls that built the ring.
	sort.Slice(r.vnodes, func(i, j int) bool {
		if r.vnodes[i].hash != r.vnodes[j].hash {
			return r.vnodes[i].hash < r.vnodes[j].hash
		}
		return r.vnodes[i].node < r.vnodes[j].node
	})
	return nil
}

// Remove deletes a node. It returns ErrUnknownNode if absent.
func (r *Ring) Remove(node string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return fmt.Errorf("%w: %q", ErrUnknownNode, node)
	}
	delete(r.nodes, node)
	kept := r.vnodes[:0]
	for _, v := range r.vnodes {
		if v.node != node {
			kept = append(kept, v)
		}
	}
	r.vnodes = kept
	return nil
}

// Nodes returns the current members in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of member nodes.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Contains reports membership.
func (r *Ring) Contains(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.nodes[node]
}

// SelectN returns the first n distinct nodes encountered walking the ring
// clockwise from the position of key. The walk order is deterministic in
// (ring membership, key).
func (r *Ring) SelectN(key string, n int) ([]string, error) {
	return r.selectFiltered(key, n, nil)
}

// SelectClustered is SelectN restricted to at most one node per cluster.
// clusterOf maps a node to its platform cluster id; nodes missing from the
// map are treated as singleton clusters.
func (r *Ring) SelectClustered(key string, n int, clusterOf map[string]string) ([]string, error) {
	seenCluster := make(map[string]bool)
	accept := func(node string) bool {
		c, ok := clusterOf[node]
		if !ok {
			c = "\x00singleton\x00" + node
		}
		if seenCluster[c] {
			return false
		}
		seenCluster[c] = true
		return true
	}
	return r.selectFiltered(key, n, accept)
}

// selectFiltered walks clockwise from the key position collecting distinct
// nodes that pass accept (nil accepts everything).
func (r *Ring) selectFiltered(key string, n int, accept func(string) bool) ([]string, error) {
	if n <= 0 {
		return nil, fmt.Errorf("hashring: select %d nodes", n)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.vnodes) == 0 {
		return nil, ErrEmptyRing
	}
	h := hashKey(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })

	picked := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.vnodes); i++ {
		v := r.vnodes[(start+i)%len(r.vnodes)]
		if seen[v.node] {
			continue
		}
		seen[v.node] = true
		if accept != nil && !accept(v.node) {
			continue
		}
		picked = append(picked, v.node)
		if len(picked) == n {
			return picked, nil
		}
	}
	return picked, fmt.Errorf("%w: got %d of %d for key %q", ErrNotEnough, len(picked), n, key)
}

// Primary returns the single owner node for a key.
func (r *Ring) Primary(key string) (string, error) {
	nodes, err := r.SelectN(key, 1)
	if err != nil {
		return "", err
	}
	return nodes[0], nil
}
