package main

import (
	"testing"
)

func TestRunnerRegistryIsComplete(t *testing.T) {
	// Every table/figure in the paper's evaluation plus the ablations.
	want := []string{
		"table1", "table2", "table4", "fig3", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"ablation-selector", "ablation-chunking", "ablation-ring",
		"ablation-migration", "ablation-concurrency", "ablation-metadata",
	}
	have := map[string]bool{}
	for _, r := range runners {
		if r.id == "" || r.desc == "" || r.run == nil {
			t.Fatalf("malformed runner %+v", r)
		}
		if have[r.id] {
			t.Fatalf("duplicate runner %q", r.id)
		}
		have[r.id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("missing experiment %q", id)
		}
	}
	if len(runners) != len(want) {
		t.Fatalf("%d runners, want %d", len(runners), len(want))
	}
}

func TestSelected(t *testing.T) {
	if !selected("fig14", []string{"all"}) {
		t.Fatal("all did not match")
	}
	if !selected("fig14", []string{"fig13", "fig14"}) {
		t.Fatal("list did not match")
	}
	if selected("fig14", []string{"fig15"}) {
		t.Fatal("mismatched id matched")
	}
}

func TestFastRunnersExecute(t *testing.T) {
	opts := options{seed: 1, scale: 0.01, trials: 10_000, chunkMB: 1, samples: 3}
	fast := map[string]bool{"table1": true, "table2": true, "table4": true, "fig3": true, "fig13": true, "ablation-metadata": true}
	for _, r := range runners {
		if !fast[r.id] {
			continue
		}
		report, err := r.run(opts)
		if err != nil {
			t.Fatalf("%s: %v", r.id, err)
		}
		if len(report.Rows) == 0 {
			t.Fatalf("%s produced no rows", r.id)
		}
	}
}
