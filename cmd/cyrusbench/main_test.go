package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/experiments"
)

func TestRunnerRegistryIsComplete(t *testing.T) {
	// Every table/figure in the paper's evaluation plus the ablations, the
	// transfer-engine benchmark, the compute fast-path benchmark, the
	// streaming-pipeline benchmark, the convergent-dedup sweep, the
	// metadata-plane benchmark, the load-adaptive redundancy sweep, and
	// the storage-class cost/latency frontier.
	want := []string{
		"table1", "table2", "table4", "fig3", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "3", "4", "5", "6", "8", "9", "10",
		"ablation-selector", "ablation-chunking", "ablation-ring",
		"ablation-migration", "ablation-concurrency", "ablation-metadata",
	}
	have := map[string]bool{}
	for _, r := range runners {
		if r.id == "" || r.desc == "" || r.run == nil {
			t.Fatalf("malformed runner %+v", r)
		}
		if have[r.id] {
			t.Fatalf("duplicate runner %q", r.id)
		}
		have[r.id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("missing experiment %q", id)
		}
	}
	if len(runners) != len(want) {
		t.Fatalf("%d runners, want %d", len(runners), len(want))
	}
}

func TestSelected(t *testing.T) {
	if !selected("fig14", []string{"all"}) {
		t.Fatal("all did not match")
	}
	if !selected("fig14", []string{"fig13", "fig14"}) {
		t.Fatal("list did not match")
	}
	if selected("fig14", []string{"fig15"}) {
		t.Fatal("mismatched id matched")
	}
}

func TestFastRunnersExecute(t *testing.T) {
	opts := options{seed: 1, scale: 0.01, trials: 10_000, chunkMB: 1, samples: 3}
	fast := map[string]bool{"table1": true, "table2": true, "table4": true, "fig3": true, "fig13": true, "ablation-metadata": true}
	for _, r := range runners {
		if !fast[r.id] {
			continue
		}
		report, err := r.run(opts)
		if err != nil {
			t.Fatalf("%s: %v", r.id, err)
		}
		if len(report.Rows) == 0 {
			t.Fatalf("%s produced no rows", r.id)
		}
	}
}

func TestWriteBenchJSON(t *testing.T) {
	dir := t.TempDir()
	opts := options{seed: 42, scale: 0.25, trials: 1000, chunkMB: 4, samples: 3}
	report := experiments.Report{
		ID: "table4", Title: "testbed throughput",
		Columns: []string{"op", "MB/s"},
		Rows:    [][]string{{"upload", "12.3"}},
	}
	if err := writeBenchJSON(dir, "table4", report, opts, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_table4.json"))
	if err != nil {
		t.Fatal(err)
	}
	var res benchResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("BENCH_table4.json does not parse: %v", err)
	}
	if res.Op != "table4" || res.Seed != 42 || res.Scale != 0.25 {
		t.Errorf("identity fields = %+v", res)
	}
	if res.Description == "" {
		t.Error("description not filled from the runner registry")
	}
	wantBytes := int64(0.25 * (638 << 20))
	if res.Bytes != wantBytes {
		t.Errorf("bytes = %d, want %d (scale*638MB)", res.Bytes, wantBytes)
	}
	if res.WallSeconds != 2 {
		t.Errorf("wall_seconds = %v, want 2", res.WallSeconds)
	}
	wantMBps := float64(wantBytes) / (1 << 20) / 2
	if math.Abs(res.MBps-wantMBps) > 1e-9 {
		t.Errorf("mb_per_second = %v, want %v", res.MBps, wantMBps)
	}
	if res.Report.ID != "table4" || len(res.Report.Rows) != 1 {
		t.Errorf("embedded report = %+v", res.Report)
	}
}

func TestDatasetBytes(t *testing.T) {
	opts := options{scale: 1, chunkMB: 8}
	cases := map[string]int64{
		"table4": 638 << 20,
		"fig14":  638 << 20,
		"fig12":  8 << 20,
		"fig16":  40 << 20,
		"5":      256 << 20,
		"6":      2 * 12 * (32 << 10) * 8,
		"fig19":  20 << 20,
		"9":      48 * (256 << 10),
		"table1": 0, // analytic experiment: no payload
	}
	for id, want := range cases {
		if got := datasetBytes(id, opts); got != want {
			t.Errorf("datasetBytes(%s) = %d, want %d", id, got, want)
		}
	}
}
