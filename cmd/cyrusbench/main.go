// Command cyrusbench regenerates the paper's tables and figures.
//
// Usage:
//
//	cyrusbench -exp all                 # everything (can take a while)
//	cyrusbench -exp fig14 -scale 0.25   # one experiment, scaled dataset
//	cyrusbench -list                    # what is available
//
// Every experiment is deterministic for a given -seed. Absolute numbers
// depend on the simulated network profiles (see DESIGN.md); the shapes —
// orderings, ratios, crossovers — are the reproduction targets recorded in
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

type runner struct {
	id, desc string
	run      func(opts options) (experiments.Report, error)
}

type options struct {
	seed    int64
	scale   float64
	trials  int
	chunkMB int
	samples int
}

func table(r experiments.Report, err error) (experiments.Report, error) { return r, err }

var runners = []runner{
	{"table1", "feature matrix vs related systems", func(o options) (experiments.Report, error) {
		return experiments.Table1(), nil
	}},
	{"table2", "CSP survey: APIs, RTT, modeled throughput", func(o options) (experiments.Report, error) {
		return experiments.Table2(), nil
	}},
	{"table4", "testbed dataset composition", func(o options) (experiments.Report, error) {
		return table(experiments.Table4(o.seed, o.scale))
	}},
	{"fig3", "CSP platform clustering (traceroute MST)", func(o options) (experiments.Report, error) {
		res, err := experiments.Figure3()
		return res.Report, err
	}},
	{"fig12", "erasure coding throughput vs t and n", func(o options) (experiments.Report, error) {
		res, err := experiments.Figure12(experiments.Figure12Config{ChunkBytes: o.chunkMB << 20, Seed: o.seed})
		return res.Report, err
	}},
	{"fig13", "simulated cumulative CSP failures", func(o options) (experiments.Report, error) {
		res, err := experiments.Figure13(experiments.Figure13Config{Trials: o.trials, Seed: o.seed})
		return res.Report, err
	}},
	{"fig14", "testbed download: selector comparison", func(o options) (experiments.Report, error) {
		res, err := experiments.Figure14(experiments.TestbedConfig{Scale: o.scale, Seed: o.seed})
		return res.Report, err
	}},
	{"fig15", "testbed cumulative completion per (t,n)", func(o options) (experiments.Report, error) {
		res, err := experiments.Figure15(experiments.TestbedConfig{Scale: o.scale, Seed: o.seed})
		return res.Report, err
	}},
	{"fig16", "40MB file: CYRUS vs DepSky vs replication vs striping", func(o options) (experiments.Report, error) {
		res, err := experiments.Figure16(experiments.Figure16Config{Seed: o.seed})
		return res.Report, err
	}},
	{"fig17", "hourly 1MB completion times: CYRUS vs DepSky", func(o options) (experiments.Report, error) {
		res, err := experiments.Figure17(experiments.HourlyConfig{Samples: o.samples, Seed: o.seed})
		return res.Report, err
	}},
	{"fig18", "share distribution across CSPs", func(o options) (experiments.Report, error) {
		res, err := experiments.Figure18(experiments.HourlyConfig{Samples: o.samples, Seed: o.seed})
		return res.Report, err
	}},
	{"fig19", "deployment trial: US and Korea, 20MB file", func(o options) (experiments.Report, error) {
		res, err := experiments.Figure19(experiments.TrialConfig{Seed: o.seed})
		return res.Report, err
	}},
	{"ablation-selector", "Algorithm 1 vs its pieces vs exhaustive", func(o options) (experiments.Report, error) {
		return experiments.AblationSelector(o.seed)
	}},
	{"ablation-chunking", "chunk size vs dedup on edit workload", func(o options) (experiments.Report, error) {
		return experiments.AblationChunking(o.seed)
	}},
	{"ablation-ring", "consistent hashing vs modulo placement churn", func(o options) (experiments.Report, error) {
		return experiments.AblationRing(o.seed)
	}},
	{"ablation-migration", "lazy vs eager share migration", func(o options) (experiments.Report, error) {
		return experiments.AblationMigration(o.seed)
	}},
	{"ablation-concurrency", "optimistic concurrent updates vs lock files", func(o options) (experiments.Report, error) {
		return experiments.AblationConcurrency(o.seed)
	}},
	{"ablation-metadata", "metadata size vs file size", func(o options) (experiments.Report, error) {
		return experiments.AblationMetadata(o.seed)
	}},
}

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list), or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	seed := flag.Int64("seed", 1, "random seed")
	scale := flag.Float64("scale", 0.25, "dataset scale for testbed experiments (1.0 = paper's 638 MB)")
	trials := flag.Int("trials", 10_000_000, "Monte Carlo trials for fig13")
	chunkMB := flag.Int("chunkmb", 100, "chunk size in MB for fig12 (paper: 100)")
	samples := flag.Int("samples", 48, "hourly samples for fig17/fig18 (paper: 48)")
	flag.Parse()

	if *list {
		for _, r := range runners {
			fmt.Printf("  %-20s %s\n", r.id, r.desc)
		}
		return
	}
	opts := options{seed: *seed, scale: *scale, trials: *trials, chunkMB: *chunkMB, samples: *samples}

	want := strings.Split(*exp, ",")
	matched := 0
	for _, r := range runners {
		if !selected(r.id, want) {
			continue
		}
		matched++
		report, err := r.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cyrusbench: %s: %v\n", r.id, err)
			os.Exit(1)
		}
		fmt.Println(report.String())
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "cyrusbench: no experiment matches %q (use -list)\n", *exp)
		os.Exit(2)
	}
}

func selected(id string, want []string) bool {
	for _, w := range want {
		if w == "all" || w == id {
			return true
		}
	}
	return false
}
