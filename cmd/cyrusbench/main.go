// Command cyrusbench regenerates the paper's tables and figures.
//
// Usage:
//
//	cyrusbench -exp all                 # everything (can take a while)
//	cyrusbench -exp fig14 -scale 0.25   # one experiment, scaled dataset
//	cyrusbench -list                    # what is available
//
// Every experiment is deterministic for a given -seed. Absolute numbers
// depend on the simulated network profiles (see DESIGN.md); the shapes —
// orderings, ratios, crossovers — are the reproduction targets recorded in
// EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

type runner struct {
	id, desc string
	run      func(opts options) (experiments.Report, error)
}

type options struct {
	seed    int64
	scale   float64
	trials  int
	chunkMB int
	samples int
}

func table(r experiments.Report, err error) (experiments.Report, error) { return r, err }

var runners = []runner{
	{"table1", "feature matrix vs related systems", func(o options) (experiments.Report, error) {
		return experiments.Table1(), nil
	}},
	{"table2", "CSP survey: APIs, RTT, modeled throughput", func(o options) (experiments.Report, error) {
		return experiments.Table2(), nil
	}},
	{"table4", "testbed dataset composition", func(o options) (experiments.Report, error) {
		return table(experiments.Table4(o.seed, o.scale))
	}},
	{"fig3", "CSP platform clustering (traceroute MST)", func(o options) (experiments.Report, error) {
		res, err := experiments.Figure3()
		return res.Report, err
	}},
	{"fig12", "erasure coding throughput vs t and n", func(o options) (experiments.Report, error) {
		res, err := experiments.Figure12(experiments.Figure12Config{ChunkBytes: o.chunkMB << 20, Seed: o.seed})
		return res.Report, err
	}},
	{"fig13", "simulated cumulative CSP failures", func(o options) (experiments.Report, error) {
		res, err := experiments.Figure13(experiments.Figure13Config{Trials: o.trials, Seed: o.seed})
		return res.Report, err
	}},
	{"fig14", "testbed download: selector comparison", func(o options) (experiments.Report, error) {
		res, err := experiments.Figure14(experiments.TestbedConfig{Scale: o.scale, Seed: o.seed})
		return res.Report, err
	}},
	{"fig15", "testbed cumulative completion per (t,n)", func(o options) (experiments.Report, error) {
		res, err := experiments.Figure15(experiments.TestbedConfig{Scale: o.scale, Seed: o.seed})
		return res.Report, err
	}},
	{"fig16", "40MB file: CYRUS vs DepSky vs replication vs striping", func(o options) (experiments.Report, error) {
		res, err := experiments.Figure16(experiments.Figure16Config{Seed: o.seed})
		return res.Report, err
	}},
	{"fig17", "hourly 1MB completion times: CYRUS vs DepSky", func(o options) (experiments.Report, error) {
		res, err := experiments.Figure17(experiments.HourlyConfig{Samples: o.samples, Seed: o.seed})
		return res.Report, err
	}},
	{"fig18", "share distribution across CSPs", func(o options) (experiments.Report, error) {
		res, err := experiments.Figure18(experiments.HourlyConfig{Samples: o.samples, Seed: o.seed})
		return res.Report, err
	}},
	{"fig19", "deployment trial: US and Korea, 20MB file", func(o options) (experiments.Report, error) {
		res, err := experiments.Figure19(experiments.TrialConfig{Seed: o.seed})
		return res.Report, err
	}},
	{"3", "transfer engine: Put/Get throughput + straggler hedging on 4-fast/3-slow", func(o options) (experiments.Report, error) {
		res, err := experiments.TransferEngine(experiments.TransferEngineConfig{Scale: o.scale, Seed: o.seed})
		return res.Report, err
	}},
	{"4", "client compute fast path: old-vs-new codec and chunking throughput", func(o options) (experiments.Report, error) {
		res, err := experiments.FastPath(experiments.FastPathConfig{Seed: o.seed})
		return res.Report, err
	}},
	{"5", "streaming data plane: PutReader/GetTo memory, TTFB, throughput vs whole-file", func(o options) (experiments.Report, error) {
		res, err := experiments.Pipeline(experiments.PipelineConfig{Scale: o.scale, Seed: o.seed})
		return res.Report, err
	}},
	{"6", "convergent dedup: raw CSP bytes and dedup ratio vs overlap at (2,4)/(3,6), two users", func(o options) (experiments.Report, error) {
		res, err := experiments.Dedup(experiments.DedupConfig{Seed: o.seed})
		return res.Report, err
	}},
	{"8", "metadata plane: batched resolve RTs, cold vs warm cache, shard fan-out (scale 1.0 = 100k files)", func(o options) (experiments.Report, error) {
		res, err := experiments.MetaPlane(experiments.MetaPlaneConfig{Scale: o.scale, Seed: o.seed})
		return res.Report, err
	}},
	{"9", "load-adaptive redundancy: offered load x hedging policy crossover (fixed 256 KiB files)", func(o options) (experiments.Report, error) {
		// Deliberately ignores -scale: the crossover acceptance bars are
		// asserted against the experiment's own defaults.
		res, err := experiments.LoadSched(experiments.LoadSchedConfig{Seed: o.seed})
		return res.Report, err
	}},
	{"10", "storage classes: cost proxy vs Get p50/p99 across all-hot / 70-30 / all-cold at (2,4) hot vs (3,8) cold", func(o options) (experiments.Report, error) {
		res, err := experiments.Classes(experiments.ClassesConfig{Seed: o.seed})
		return res.Report, err
	}},
	{"ablation-selector", "Algorithm 1 vs its pieces vs exhaustive", func(o options) (experiments.Report, error) {
		return experiments.AblationSelector(o.seed)
	}},
	{"ablation-chunking", "chunk size vs dedup on edit workload", func(o options) (experiments.Report, error) {
		return experiments.AblationChunking(o.seed)
	}},
	{"ablation-ring", "consistent hashing vs modulo placement churn", func(o options) (experiments.Report, error) {
		return experiments.AblationRing(o.seed)
	}},
	{"ablation-migration", "lazy vs eager share migration", func(o options) (experiments.Report, error) {
		return experiments.AblationMigration(o.seed)
	}},
	{"ablation-concurrency", "optimistic concurrent updates vs lock files", func(o options) (experiments.Report, error) {
		return experiments.AblationConcurrency(o.seed)
	}},
	{"ablation-metadata", "metadata size vs file size", func(o options) (experiments.Report, error) {
		return experiments.AblationMetadata(o.seed)
	}},
}

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list), or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	seed := flag.Int64("seed", 1, "random seed")
	scale := flag.Float64("scale", 0.25, "dataset scale for testbed experiments (1.0 = paper's 638 MB)")
	trials := flag.Int("trials", 10_000_000, "Monte Carlo trials for fig13")
	chunkMB := flag.Int("chunkmb", 100, "chunk size in MB for fig12 (paper: 100)")
	samples := flag.Int("samples", 48, "hourly samples for fig17/fig18 (paper: 48)")
	asJSON := flag.Bool("json", false, "additionally write BENCH_<id>.json per experiment")
	outdir := flag.String("outdir", ".", "directory for -json output files")
	flag.Parse()

	if *list {
		for _, r := range runners {
			fmt.Printf("  %-20s %s\n", r.id, r.desc)
		}
		return
	}
	opts := options{seed: *seed, scale: *scale, trials: *trials, chunkMB: *chunkMB, samples: *samples}

	want := strings.Split(*exp, ",")
	matched := 0
	for _, r := range runners {
		if !selected(r.id, want) {
			continue
		}
		matched++
		start := time.Now()
		report, err := r.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cyrusbench: %s: %v\n", r.id, err)
			os.Exit(1)
		}
		fmt.Println(report.String())
		if *asJSON {
			if err := writeBenchJSON(*outdir, r.id, report, opts, time.Since(start)); err != nil {
				fmt.Fprintf(os.Stderr, "cyrusbench: %s: %v\n", r.id, err)
				os.Exit(1)
			}
		}
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "cyrusbench: no experiment matches %q (use -list)\n", *exp)
		os.Exit(2)
	}
}

// benchResult is the machine-readable form of one experiment run
// (BENCH_<id>.json). Virtual durations — the simulated completion times the
// experiment measured — live in the report rows; WallSeconds is the real
// time the run took on this machine. Bytes is the experiment's nominal
// dataset size where one is defined (testbed runs scale the paper's 638 MB
// dataset; fig12/fig16 process a fixed payload), 0 otherwise, and MBps
// derives from Bytes over wall time.
type benchResult struct {
	Op          string             `json:"op"`
	Description string             `json:"description"`
	Seed        int64              `json:"seed"`
	Scale       float64            `json:"scale,omitempty"`
	Bytes       int64              `json:"bytes,omitempty"`
	WallSeconds float64            `json:"wall_seconds"`
	MBps        float64            `json:"mb_per_second,omitempty"`
	Report      experiments.Report `json:"report"`
}

// datasetBytes returns the nominal payload an experiment pushes through the
// system, when one is defined.
func datasetBytes(id string, opts options) int64 {
	const paperDataset = 638 << 20 // Table 4's 638 MB testbed dataset
	switch id {
	case "table4", "fig14", "fig15", "3":
		return int64(opts.scale * paperDataset)
	case "5":
		return int64(opts.scale * (256 << 20)) // the streaming benchmark's 256 MiB object
	case "fig12":
		return int64(opts.chunkMB) << 20
	case "fig16":
		return 40 << 20
	case "6":
		return 2 * 12 * (32 << 10) * 8 // 2 users x 12 files x 32 KiB, 8 sweep points
	case "fig19":
		return 20 << 20
	case "9":
		return 48 * (256 << 10) // 48 equal-size 256 KiB files at the default scale
	case "10":
		return 3 * 24 * (256 << 10) // 3 class-mix cells x 24 files x 256 KiB
	}
	return 0
}

func writeBenchJSON(outdir, id string, report experiments.Report, opts options, wall time.Duration) error {
	res := benchResult{
		Op:          id,
		Seed:        opts.seed,
		Scale:       opts.scale,
		Bytes:       datasetBytes(id, opts),
		WallSeconds: wall.Seconds(),
		Report:      report,
	}
	for _, r := range runners {
		if r.id == id {
			res.Description = r.desc
		}
	}
	if res.Bytes > 0 && wall > 0 {
		res.MBps = float64(res.Bytes) / (1 << 20) / wall.Seconds()
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(outdir, "BENCH_"+id+".json")
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func selected(id string, want []string) bool {
	for _, w := range want {
		if w == "all" || w == id {
			return true
		}
	}
	return false
}
