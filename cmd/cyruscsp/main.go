// Command cyruscsp runs one cloud-storage provider speaking the resthttp
// protocol — the server side a commercial CSP would operate. Run a few of
// these (different ports, different machines) and point cyrusctl or the
// cyrus library at them to get a CYRUS cloud over real sockets.
//
//	cyruscsp -addr :8081 -name alpha -token s3cret
//	cyruscsp -addr :8082 -name beta  -token s3cret -identity id-keyed
//	cyruscsp -addr :8083 -name gamma -token s3cret -capacity 1073741824
//
// Then:
//
//	cyrusctl -config cloud.json init -t 2 -n 3 \
//	    -csp alpha=http://host1:8081 -csp beta=http://host2:8082 -csp gamma=http://host3:8083
//
// The -admin flag additionally exposes POST /admin/fail and
// POST /admin/available for failure-injection demos; leave it off in any
// real deployment.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/cloudsim"
	"repro/internal/csp"
	"repro/internal/obs"
	"repro/internal/resthttp"
)

func main() {
	addr := flag.String("addr", ":8081", "listen address")
	name := flag.String("name", "cyruscsp", "provider name")
	token := flag.String("token", "", "bearer token clients must present (required)")
	capacity := flag.Int64("capacity", 0, "storage capacity in bytes (0 = unlimited)")
	identity := flag.String("identity", "name-keyed", "object identity model: name-keyed (overwrite) or id-keyed (duplicate)")
	admin := flag.Bool("admin", false, "expose fault-injection admin endpoints (testing only)")
	withObs := flag.Bool("obs", true, "serve /metrics, /healthz, /debug/pprof/, /debug/spans")
	flag.Parse()

	if *token == "" {
		fmt.Fprintln(os.Stderr, "cyruscsp: -token is required")
		os.Exit(2)
	}
	var id csp.ObjectIdentity
	switch *identity {
	case "name-keyed":
		id = csp.NameKeyed
	case "id-keyed":
		id = csp.IDKeyed
	default:
		fmt.Fprintf(os.Stderr, "cyruscsp: unknown -identity %q\n", *identity)
		os.Exit(2)
	}

	backend := cloudsim.NewBackend(*name, id, *capacity)
	srv, err := resthttp.NewServer(backend, *token, *admin)
	if err != nil {
		log.Fatal(err)
	}
	if *withObs {
		srv.SetObserver(obs.NewObserver())
	}
	log.Printf("cyruscsp %q serving on %s (identity=%s capacity=%d admin=%v obs=%v)",
		*name, *addr, *identity, *capacity, *admin, *withObs)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
