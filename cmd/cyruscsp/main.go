// Command cyruscsp runs one cloud-storage provider speaking the resthttp
// protocol — the server side a commercial CSP would operate. Run a few of
// these (different ports, different machines) and point cyrusctl or the
// cyrus library at them to get a CYRUS cloud over real sockets.
//
//	CYRUSCSP_TOKEN=s3cret cyruscsp -addr :8081 -name alpha
//	CYRUSCSP_TOKEN=s3cret cyruscsp -addr :8082 -name beta  -identity id-keyed
//	cyruscsp -addr :8083 -name gamma -token-file tok.txt -capacity 1073741824
//
// The token may also be passed with -token, but prefer the CYRUSCSP_TOKEN
// environment variable or -token-file: argv is world-readable on most
// systems (ps, /proc/<pid>/cmdline), so a flag-passed token leaks to any
// local user.
//
// Then:
//
//	cyrusctl -config cloud.json init -t 2 -n 3 \
//	    -csp alpha=http://host1:8081 -csp beta=http://host2:8082 -csp gamma=http://host3:8083
//
// The -admin flag additionally exposes POST /admin/fail and
// POST /admin/available for failure-injection demos; leave it off in any
// real deployment.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"repro/internal/cloudsim"
	"repro/internal/csp"
	"repro/internal/obs"
	"repro/internal/resthttp"
)

func main() {
	addr := flag.String("addr", ":8081", "listen address")
	name := flag.String("name", "cyruscsp", "provider name")
	token := flag.String("token", "", "bearer token clients must present (prefer CYRUSCSP_TOKEN or -token-file; argv is visible to other local users)")
	tokenFile := flag.String("token-file", "", "file holding the bearer token (surrounding whitespace is trimmed)")
	capacity := flag.Int64("capacity", 0, "storage capacity in bytes (0 = unlimited)")
	identity := flag.String("identity", "name-keyed", "object identity model: name-keyed (overwrite) or id-keyed (duplicate)")
	dir := flag.String("dir", "", "serve objects from this directory (durable; streams bodies end to end) instead of memory")
	admin := flag.Bool("admin", false, "expose fault-injection admin endpoints (testing only; memory backend only)")
	withObs := flag.Bool("obs", true, "serve /metrics, /healthz, /debug/pprof/, /debug/spans")
	flag.Parse()

	tok, err := resolveToken(*token, *tokenFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cyruscsp: %v\n", err)
		os.Exit(2)
	}
	var id csp.ObjectIdentity
	switch *identity {
	case "name-keyed":
		id = csp.NameKeyed
	case "id-keyed":
		id = csp.IDKeyed
	default:
		fmt.Fprintf(os.Stderr, "cyruscsp: unknown -identity %q\n", *identity)
		os.Exit(2)
	}

	var srv *resthttp.Server
	if *dir != "" {
		if *admin {
			fmt.Fprintln(os.Stderr, "cyruscsp: -admin needs the in-memory backend; drop -dir or -admin")
			os.Exit(2)
		}
		store, derr := cloudsim.NewDirStore(*name, *dir)
		if derr != nil {
			log.Fatal(derr)
		}
		srv, err = resthttp.NewStoreServer(store, tok)
	} else {
		backend := cloudsim.NewBackend(*name, id, *capacity)
		srv, err = resthttp.NewServer(backend, tok, *admin)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *withObs {
		srv.SetObserver(obs.NewObserver())
	}
	log.Printf("cyruscsp %q serving on %s (identity=%s capacity=%d dir=%q admin=%v obs=%v)",
		*name, *addr, *identity, *capacity, *dir, *admin, *withObs)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}

// resolveToken picks the bearer token from, in order of precedence, the
// -token flag, the -token-file contents, and the CYRUSCSP_TOKEN environment
// variable.
func resolveToken(flagToken, tokenFile string) (string, error) {
	if flagToken != "" {
		return flagToken, nil
	}
	if tokenFile != "" {
		b, err := os.ReadFile(tokenFile)
		if err != nil {
			return "", fmt.Errorf("-token-file: %v", err)
		}
		tok := strings.TrimSpace(string(b))
		if tok == "" {
			return "", fmt.Errorf("-token-file %s is empty", tokenFile)
		}
		return tok, nil
	}
	if tok := os.Getenv("CYRUSCSP_TOKEN"); tok != "" {
		return tok, nil
	}
	return "", errors.New("a bearer token is required: set CYRUSCSP_TOKEN, -token-file, or -token")
}
