package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// ctl drives the CLI entry point directly.
func ctl(t *testing.T, cfg string, args ...string) error {
	t.Helper()
	return run(append([]string{"-config", cfg}, args...))
}

func mustCtl(t *testing.T, cfg string, args ...string) {
	t.Helper()
	if err := ctl(t, cfg, args...); err != nil {
		t.Fatalf("cyrusctl %v: %v", args, err)
	}
}

// setup initializes a 3-provider cloud in a temp dir and returns the
// config path and working dir.
func setup(t *testing.T) (cfg, dir string) {
	t.Helper()
	dir = t.TempDir()
	cfg = filepath.Join(dir, "cloud.json")
	for _, p := range []string{"a", "b", "c"} {
		if err := os.MkdirAll(filepath.Join(dir, p), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	mustCtl(t, cfg, "init", "-t", "2", "-n", "3",
		"-csp", "a="+filepath.Join(dir, "a"),
		"-csp", "b="+filepath.Join(dir, "b"),
		"-csp", "c="+filepath.Join(dir, "c"))
	return cfg, dir
}

func TestCLILifecycle(t *testing.T) {
	cfg, dir := setup(t)

	src := filepath.Join(dir, "hello.txt")
	if err := os.WriteFile(src, []byte("hello from the CLI test"), 0o644); err != nil {
		t.Fatal(err)
	}
	mustCtl(t, cfg, "put", src)
	mustCtl(t, cfg, "ls")
	out := filepath.Join(dir, "out.txt")
	mustCtl(t, cfg, "get", "-o", out, "hello.txt")
	got, err := os.ReadFile(out)
	if err != nil || string(got) != "hello from the CLI test" {
		t.Fatalf("get round trip: %q, %v", got, err)
	}
	mustCtl(t, cfg, "history", "hello.txt")
	mustCtl(t, cfg, "conflicts")
	mustCtl(t, cfg, "gc")
	mustCtl(t, cfg, "probe")
	mustCtl(t, cfg, "recover")
	mustCtl(t, cfg, "rm", "hello.txt")
	if err := ctl(t, cfg, "get", "-o", out, "hello.txt"); err == nil {
		t.Fatal("get after rm succeeded")
	}
}

func TestCLISyncCommand(t *testing.T) {
	cfg, dir := setup(t)
	folder := filepath.Join(dir, "synced")
	if err := os.MkdirAll(folder, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(folder, "note.md"), []byte("local note"), 0o644); err != nil {
		t.Fatal(err)
	}
	mustCtl(t, cfg, "sync", folder)

	// A second folder (another "device" sharing the same config/accounts)
	// pulls the file down.
	folder2 := filepath.Join(dir, "synced2")
	if err := os.MkdirAll(folder2, 0o755); err != nil {
		t.Fatal(err)
	}
	mustCtl(t, cfg, "sync", folder2)
	got, err := os.ReadFile(filepath.Join(folder2, "note.md"))
	if err != nil || string(got) != "local note" {
		t.Fatalf("synced copy: %q, %v", got, err)
	}
}

func TestCLIImportAndCSPLifecycle(t *testing.T) {
	cfg, dir := setup(t)
	// Drop a raw object into provider "a" the way a legacy app would —
	// via a DirStore path (the CLI encodes names with the f- prefix).
	legacy := filepath.Join(dir, "a", "f-legacy.bin")
	if err := os.WriteFile(legacy, []byte("pre-cyrus data"), 0o644); err != nil {
		t.Fatal(err)
	}
	mustCtl(t, cfg, "import", "a", "legacy.bin", "imported/legacy.bin")
	out := filepath.Join(dir, "got.bin")
	mustCtl(t, cfg, "get", "-o", out, "imported/legacy.bin")
	got, _ := os.ReadFile(out)
	if string(got) != "pre-cyrus data" {
		t.Fatalf("imported content %q", got)
	}

	mustCtl(t, cfg, "rmcsp", "c")
	mustCtl(t, cfg, "reinstate", "c")
	if err := ctl(t, cfg, "rmcsp", "nope"); err == nil {
		t.Fatal("rmcsp unknown provider succeeded")
	}
}

func TestCLIErrors(t *testing.T) {
	if err := run(nil); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Fatalf("no-args err = %v", err)
	}
	if err := run([]string{"-config", "/nonexistent/cfg.json", "ls"}); err == nil {
		t.Fatal("missing config accepted")
	}
	dir := t.TempDir()
	cfg := filepath.Join(dir, "c.json")
	if err := ctl(t, cfg, "init", "-t", "2"); err == nil {
		t.Fatal("init with too few CSPs accepted")
	}
	if err := ctl(t, cfg, "bogus"); err == nil {
		t.Fatal("unknown command accepted")
	}
}

// TestCLIFlightdumpAndTop: the diagnosis commands work against a local
// cloud — flightdump writes a populated manual dump, top renders one
// refresh without blocking.
func TestCLIFlightdumpAndTop(t *testing.T) {
	cfg, dir := setup(t)
	src := filepath.Join(dir, "payload.txt")
	if err := os.WriteFile(src, []byte(strings.Repeat("flight data ", 200)), 0o644); err != nil {
		t.Fatal(err)
	}
	mustCtl(t, cfg, "put", src)

	out := filepath.Join(dir, "dump.json")
	mustCtl(t, cfg, "flightdump", "-o", out)
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Seq    uint64 `json:"seq"`
		Reason string `json:"reason"`
		Events []struct {
			Kind string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("dump is not JSON: %v", err)
	}
	if dump.Seq == 0 || !strings.HasPrefix(dump.Reason, "manual") || len(dump.Events) == 0 {
		t.Errorf("dump = seq %d reason %q with %d events; want populated manual dump",
			dump.Seq, dump.Reason, len(dump.Events))
	}

	mustCtl(t, cfg, "top", "-count", "1", "-interval", "1ms")

	// -json replaces the table with one machine-readable document per
	// refresh: every provider row carries the full load vector plus the
	// hedge gate's state.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	topErr := ctl(t, cfg, "top", "-count", "1", "-interval", "1ms", "-json")
	w.Close()
	os.Stdout = old
	if topErr != nil {
		t.Fatalf("top -json: %v", topErr)
	}
	raw, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		QueueDepth *int `json:"queue_depth"`
		CSPs       []struct {
			CSP        string          `json:"csp"`
			Current    json.RawMessage `json:"current"`
			HedgeState *string         `json:"hedge_state"`
		} `json:"csps"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("top -json output is not JSON: %v\n%s", err, raw)
	}
	if doc.QueueDepth == nil || len(doc.CSPs) == 0 {
		t.Fatalf("top -json missing queue depth or provider rows: %s", raw)
	}
	for _, c := range doc.CSPs {
		if c.CSP == "" || len(c.Current) == 0 || c.HedgeState == nil {
			t.Errorf("top -json row incomplete: %+v", c)
		}
	}
}
