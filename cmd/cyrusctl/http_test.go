package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/csp"
	"repro/internal/resthttp"
)

// TestCLIOverHTTPProviders drives cyrusctl against live HTTP providers —
// the full deployment story: cyruscsp-equivalent servers + CLI client.
func TestCLIOverHTTPProviders(t *testing.T) {
	var urls []string
	for i := 0; i < 3; i++ {
		b := cloudsim.NewBackend("httpcsp", csp.NameKeyed, 0)
		srv, err := resthttp.NewServer(b, "wire-token", false)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}

	dir := t.TempDir()
	cfg := filepath.Join(dir, "cloud.json")
	mustCtl(t, cfg, "init", "-t", "2", "-n", "3", "-csptoken", "wire-token",
		"-csp", "alpha="+urls[0],
		"-csp", "beta="+urls[1],
		"-csp", "gamma="+urls[2])

	src := filepath.Join(dir, "wire.txt")
	if err := os.WriteFile(src, []byte("stored over HTTP"), 0o644); err != nil {
		t.Fatal(err)
	}
	mustCtl(t, cfg, "put", src)
	out := filepath.Join(dir, "back.txt")
	mustCtl(t, cfg, "get", "-o", out, "wire.txt")
	got, err := os.ReadFile(out)
	if err != nil || string(got) != "stored over HTTP" {
		t.Fatalf("HTTP round trip: %q, %v", got, err)
	}
	mustCtl(t, cfg, "ls")
	mustCtl(t, cfg, "gc")
}

func TestCLIInitHTTPRequiresToken(t *testing.T) {
	dir := t.TempDir()
	cfg := filepath.Join(dir, "cloud.json")
	err := ctl(t, cfg, "init", "-t", "2",
		"-csp", "a=http://localhost:1",
		"-csp", "b=http://localhost:2")
	if err == nil {
		t.Fatal("HTTP providers without -csptoken accepted")
	}
}
