// Command cyrusctl operates a real CYRUS cloud over directory-backed
// providers — each configured directory plays the role of one CSP account
// (point them at different disks, mounts, or folders synced by different
// providers' native clients).
//
// Setup:
//
//	cyrusctl -config cloud.json init -t 2 -n 3 \
//	    -csp dropbox=/mnt/dropbox -csp gdrive=/mnt/gdrive -csp box=/mnt/box
//
// Then:
//
//	cyrusctl -config cloud.json put notes.txt
//	cyrusctl -config cloud.json ls
//	cyrusctl -config cloud.json get notes.txt -o /tmp/notes.txt
//	cyrusctl -config cloud.json history notes.txt
//	cyrusctl -config cloud.json restore notes.txt <version-id>
//	cyrusctl -config cloud.json rm notes.txt
//	cyrusctl -config cloud.json conflicts
//	cyrusctl -config cloud.json resolve notes.txt <winner-version-id>
//
// The key in the config file is the user secret: every device sharing the
// cloud must use the same key, and without it nothing is readable.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/cyrus"
)

type cspEntry struct {
	Name string `json:"name"`
	// Path is a local directory (DirStore) or an http(s):// base URL
	// (a provider speaking the resthttp protocol, e.g. cmd/cyruscsp).
	Path string `json:"path"`
}

type config struct {
	ClientID string `json:"client_id"`
	Key      string `json:"key"`
	T        int    `json:"t"`
	N        int    `json:"n"`
	// Metadata-plane knobs (DESIGN.md §11). Zero values keep the paper's
	// behavior: records on every provider, no cache, no compaction.
	MetaShards       int        `json:"meta_shards,omitempty"`
	MetaCacheEntries int        `json:"meta_cache_entries,omitempty"`
	TreeRetention    int        `json:"tree_retention,omitempty"`
	CSPToken         string     `json:"csp_token,omitempty"` // bearer token for HTTP providers
	CSPs             []cspEntry `json:"csps"`
	// Storage-class knobs (DESIGN.md §13). Empty = one implicit class with
	// the client-wide (t, n). Seed via 'init -class ... -rule ...' or edit
	// the JSON directly; the spec grammar is documented on the init flags.
	Classes      []cyrus.StorageClass `json:"classes,omitempty"`
	ClassRules   []cyrus.ClassRule    `json:"class_rules,omitempty"`
	DefaultClass string               `json:"default_class,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cyrusctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cyrusctl", flag.ContinueOnError)
	cfgPath := fs.String("config", "cyrus.json", "path to the cloud config file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: cyrusctl [-config file] <init|put|get|ls|history|rm|restore|conflicts|resolve|recover|sync|import|gc|probe|rmcsp|reinstate|stats|flightdump|top|classes|reencode> ...")
	}
	cmd, rest := rest[0], rest[1:]

	if cmd == "init" {
		return cmdInit(*cfgPath, rest)
	}
	if cmd == "flightdump" && hasFlag(rest, "-url") {
		// Remote mode needs no config file: the dump comes from a running
		// server's /debug/flightrecorder endpoint.
		return cmdFlightdump(context.Background(), nil, rest)
	}
	client, err := openClient(*cfgPath)
	if err != nil {
		return err
	}
	ctx := context.Background()
	switch cmd {
	case "put":
		return cmdPut(ctx, client, rest)
	case "get":
		return cmdGet(ctx, client, rest)
	case "ls":
		return cmdLs(ctx, client, rest)
	case "history":
		return cmdHistory(ctx, client, rest)
	case "rm":
		return cmdRm(ctx, client, rest)
	case "restore":
		return cmdRestore(ctx, client, rest)
	case "conflicts":
		return cmdConflicts(ctx, client)
	case "resolve":
		return cmdResolve(ctx, client, rest)
	case "recover":
		return client.Recover(ctx)
	case "sync":
		return cmdSync(ctx, client, rest)
	case "import":
		return cmdImport(ctx, client, rest)
	case "gc":
		return cmdGC(ctx, client)
	case "probe":
		return cmdProbe(ctx, client)
	case "stats":
		return cmdStats(ctx, client, rest)
	case "flightdump":
		return cmdFlightdump(ctx, client, rest)
	case "top":
		return cmdTop(ctx, client, rest)
	case "reinstate":
		return cmdReinstate(ctx, client, rest)
	case "classes":
		return cmdClasses(ctx, client, rest)
	case "reencode":
		return cmdReencode(ctx, client, rest)
	case "rmcsp":
		if len(rest) != 1 {
			return fmt.Errorf("usage: rmcsp <provider>")
		}
		return client.RemoveCSP(ctx, rest[0])
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func cmdSync(ctx context.Context, c *cyrus.Client, args []string) error {
	fs := flag.NewFlagSet("sync", flag.ContinueOnError)
	watch := fs.Duration("watch", 0, "keep syncing at this interval (0 = one pass)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: sync [-watch interval] <dir>")
	}
	sy, err := cyrus.NewSyncer(c, fs.Arg(0))
	if err != nil {
		return err
	}
	report := func(actions []cyrus.SyncAction, err error) {
		for _, a := range actions {
			fmt.Printf("%-13s %s\n", a.Op, a.Name)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "sync:", err)
		}
	}
	if *watch > 0 {
		return sy.Watch(ctx, *watch, report)
	}
	actions, err := sy.Sync(ctx)
	report(actions, nil)
	if err != nil {
		return err
	}
	if len(actions) == 0 {
		fmt.Println("up to date")
	}
	return nil
}

func cmdImport(ctx context.Context, c *cyrus.Client, args []string) error {
	if len(args) < 2 || len(args) > 3 {
		return fmt.Errorf("usage: import <provider> <object> [dest-name]")
	}
	dest := ""
	if len(args) == 3 {
		dest = args[2]
	}
	if err := c.Import(ctx, args[0], args[1], dest); err != nil {
		return err
	}
	if dest == "" {
		dest = args[1]
	}
	fmt.Printf("imported %s from %s as %s\n", args[1], args[0], dest)
	return nil
}

func cmdGC(ctx context.Context, c *cyrus.Client) error {
	stats, err := c.GC(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("collected %d chunks (%d share objects, ~%d bytes); %d shares skipped\n",
		stats.Chunks, stats.Shares, stats.Bytes, stats.Skipped)
	return nil
}

func cmdProbe(ctx context.Context, c *cyrus.Client) error {
	recovered := c.ProbeFailed(ctx)
	if len(recovered) == 0 {
		fmt.Println("no failed providers recovered")
		return nil
	}
	for _, name := range recovered {
		fmt.Printf("%s is back up\n", name)
	}
	return nil
}

// cmdStats syncs once (touching every reachable provider) and dumps the
// observability scoreboard: per-CSP request counts, latency EWMA, link
// estimates, marked-down state, the metadata records the hashring routes to
// each provider (shard skew), and the metadata cache hit ratio. -json adds
// the full metrics snapshot.
func cmdStats(ctx context.Context, c *cyrus.Client, args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit JSON (scoreboard plus metrics snapshot)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := c.Observer()
	if o == nil {
		return fmt.Errorf("stats: client has no observer attached")
	}
	if _, err := c.Sync(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "stats: sync:", err)
	}
	rows := o.Health().Snapshot()
	snap := o.Registry().Snapshot()
	hits, _ := snap.Find(cyrus.MetricMetaCacheHits, nil)
	misses, _ := snap.Find(cyrus.MetricMetaCacheMisses, nil)
	hitRatio := 0.0
	if total := hits.Value + misses.Value; total > 0 {
		hitRatio = hits.Value / total
	}
	shards := c.MetaShardCounts()
	if *asJSON {
		out := struct {
			CSPs              []cyrus.CSPHealth     `json:"csps"`
			MetaCacheHitRatio float64               `json:"meta_cache_hit_ratio"`
			ShardRecords      map[string]int        `json:"shard_records,omitempty"`
			Metrics           cyrus.MetricsSnapshot `json:"metrics"`
		}{CSPs: rows, MetaCacheHitRatio: hitRatio, ShardRecords: shards, Metrics: snap}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Printf("%-12s %6s %6s %10s %12s %12s %8s %-6s %s\n",
		"CSP", "OK", "FAIL", "LAT(ms)", "DOWN(B/s)", "UP(B/s)", "RECORDS", "STATE", "LAST ERROR")
	for _, r := range rows {
		state := "up"
		if r.Down {
			state = "DOWN"
		}
		fmt.Printf("%-12s %6d %6d %10.2f %12.0f %12.0f %8d %-6s %s\n",
			r.CSP, r.Successes, r.Failures, r.LatencyEWMASeconds*1000,
			r.DownlinkBps, r.UplinkBps, shards[r.CSP], state, r.LastError)
	}
	fmt.Printf("metadata cache: %.0f hits, %.0f misses (%.1f%% hit ratio)\n",
		hits.Value, misses.Value, 100*hitRatio)
	return nil
}

// hasFlag reports whether args carries the given flag name.
func hasFlag(args []string, name string) bool {
	for _, a := range args {
		if a == name || strings.HasPrefix(a, name+"=") {
			return true
		}
	}
	return false
}

// cmdFlightdump captures a flight-recorder dump. With -url it fetches a
// running server's /debug/flightrecorder (POST forces a fresh dump there);
// without it, it opens the local cloud, syncs once to generate activity,
// forces a manual dump, and prints it.
func cmdFlightdump(ctx context.Context, c *cyrus.Client, args []string) error {
	fs := flag.NewFlagSet("flightdump", flag.ContinueOnError)
	url := fs.String("url", "", "base URL of a running server (fetches its /debug/flightrecorder)")
	out := fs.String("o", "", "write the dump to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var data []byte
	if *url != "" {
		resp, err := http.Post(strings.TrimSuffix(*url, "/")+"/debug/flightrecorder", "application/json", nil)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("flightdump: %s returned %s", *url, resp.Status)
		}
		if data, err = io.ReadAll(resp.Body); err != nil {
			return err
		}
	} else {
		o := c.Observer()
		if o == nil {
			return fmt.Errorf("flightdump: client has no observer attached")
		}
		if _, err := c.Sync(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "flightdump: sync:", err)
		}
		dump := o.FlightDump(cyrus.FlightTriggerManual, "cyrusctl")
		var err error
		if data, err = json.MarshalIndent(dump, "", "  "); err != nil {
			return err
		}
		data = append(data, '\n')
	}
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("flight dump written to %s (%d bytes)\n", *out, len(data))
		return nil
	}
	_, err := os.Stdout.Write(data)
	return err
}

// cmdTop is a live per-CSP load view: every interval it syncs (touching
// every reachable provider) and redraws a table of in-flight counts, queue
// depth, latency EWMA, predicted completion time, the hedge controller's
// per-provider suppression state, and the SLO burn counters. -count bounds
// the iterations (0 = until interrupted); -json replaces the table with
// one JSON document per refresh carrying the full load vector (current
// sample plus the retained window) for machine consumers.
func cmdTop(ctx context.Context, c *cyrus.Client, args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	count := fs.Int("count", 0, "iterations before exiting (0 = run until interrupted)")
	asJSON := fs.Bool("json", false, "emit one JSON document per refresh instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := c.Observer()
	if o == nil {
		return fmt.Errorf("top: client has no observer attached")
	}
	for i := 0; *count == 0 || i < *count; i++ {
		if i > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(*interval):
			}
		}
		if _, err := c.Sync(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "top: sync:", err)
		}
		if *asJSON {
			if err := printTopJSON(c, o); err != nil {
				return err
			}
		} else {
			printTop(c, o)
		}
	}
	return nil
}

// hedgeFlag renders the engine's per-provider hedge gate for the table:
// "ok" when a hedge would arm, otherwise the suppression reason ("off",
// "cold", or "load" — the Ghosh-crossover gate).
func hedgeFlag(state string) string {
	if state == "" {
		return "ok"
	}
	return state
}

func printTop(c *cyrus.Client, o *cyrus.Observer) {
	fmt.Printf("-- %s --\n", time.Now().Format("15:04:05"))
	fmt.Printf("%-12s %8s %6s %10s %12s %8s %-6s %-5s\n",
		"CSP", "INFLIGHT", "QUEUE", "EWMA(ms)", "PREDICT(ms)", "SAMPLES", "STATE", "HEDGE")
	health := map[string]cyrus.CSPHealth{}
	for _, h := range o.Health().Snapshot() {
		health[h.CSP] = h
	}
	for _, l := range o.LoadStats() {
		state := "up"
		if health[l.CSP].Down {
			state = "DOWN"
		}
		fmt.Printf("%-12s %8d %6d %10.2f %12.2f %8d %-6s %-5s\n",
			l.CSP, l.Current.InFlight, l.Current.QueueDepth,
			l.Current.EWMALatencySeconds*1000, l.Current.PredictedSeconds*1000,
			len(l.Window), state, hedgeFlag(c.Engine().HedgeState(l.CSP)))
	}
	s := o.Registry().Snapshot()
	for _, op := range []string{"put", "get", "sync", "migrate", "gc"} {
		okP, _ := s.Find(cyrus.MetricSLOOK, map[string]string{"op": op})
		brP, hasBr := s.Find(cyrus.MetricSLOBreach, map[string]string{"op": op})
		if okP.Value == 0 && (!hasBr || brP.Value == 0) {
			continue
		}
		fmt.Printf("slo %-8s ok=%.0f breach=%.0f\n", op, okP.Value, brP.Value)
	}
}

// topCSPJSON is one provider row of the -json output: the observer's full
// load vector plus scoreboard and hedge-gate state.
type topCSPJSON struct {
	cyrus.CSPLoad
	Down       bool   `json:"down"`
	HedgeState string `json:"hedge_state"` // "" = a hedge would arm
}

// topJSON is one -json refresh document.
type topJSON struct {
	Time       time.Time    `json:"time"`
	QueueDepth int          `json:"queue_depth"`
	CSPs       []topCSPJSON `json:"csps"`
}

func printTopJSON(c *cyrus.Client, o *cyrus.Observer) error {
	health := map[string]cyrus.CSPHealth{}
	for _, h := range o.Health().Snapshot() {
		health[h.CSP] = h
	}
	doc := topJSON{Time: time.Now(), QueueDepth: o.QueueDepthNow()}
	for _, l := range o.LoadStats() {
		doc.CSPs = append(doc.CSPs, topCSPJSON{
			CSPLoad:    l,
			Down:       health[l.CSP].Down,
			HedgeState: c.Engine().HedgeState(l.CSP),
		})
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	_, err = fmt.Println(string(data))
	return err
}

func cmdReinstate(ctx context.Context, c *cyrus.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: reinstate <provider>")
	}
	return c.ReinstateCSP(ctx, args[0])
}

func cmdInit(cfgPath string, args []string) error {
	fs := flag.NewFlagSet("init", flag.ContinueOnError)
	t := fs.Int("t", 2, "privacy level: shares needed to reconstruct")
	n := fs.Int("n", 0, "reliability level: shares stored (0 = derive from failure model)")
	key := fs.String("key", "", "user key (generated if empty)")
	client := fs.String("client", "", "client id (hostname if empty)")
	cspToken := fs.String("csptoken", "", "bearer token for http(s) providers")
	metaShards := fs.Int("metashards", 0, "providers per metadata record (0 = all providers)")
	metaCache := fs.Int("metacache", 0, "metadata cache entries (0 = cache disabled)")
	retention := fs.Int("retention", 0, "resolved conflict branches kept per file (0 = keep all)")
	var csps multiFlag
	fs.Var(&csps, "csp", "provider as name=<dir-path or http(s)://url> (repeatable, need at least t)")
	var classes multiFlag
	fs.Var(&classes, "class", "storage class as name,key=val,... with keys tier|t|n|epsilon|csps (a+b+c)|metacsps|demote-after (duration)|demote-to (repeatable)")
	var rules multiFlag
	fs.Var(&rules, "rule", "class rule as prefix=class (repeatable, longest prefix wins)")
	defClass := fs.String("defaultclass", "", "class for objects no rule matches (empty = implicit default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(csps) < *t {
		return fmt.Errorf("need at least %d -csp entries, got %d", *t, len(csps))
	}
	cfg := config{
		ClientID: *client, Key: *key, T: *t, N: *n, CSPToken: *cspToken,
		MetaShards: *metaShards, MetaCacheEntries: *metaCache, TreeRetention: *retention,
		DefaultClass: *defClass,
	}
	for _, spec := range classes {
		cls, err := parseClassSpec(spec)
		if err != nil {
			return err
		}
		cfg.Classes = append(cfg.Classes, cls)
	}
	for _, spec := range rules {
		prefix, class, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -rule %q, want prefix=class", spec)
		}
		cfg.ClassRules = append(cfg.ClassRules, cyrus.ClassRule{Prefix: prefix, Class: class})
	}
	if cfg.ClientID == "" {
		host, _ := os.Hostname()
		cfg.ClientID = host
	}
	if cfg.Key == "" {
		var buf [24]byte
		f, err := os.Open("/dev/urandom")
		if err == nil {
			_, _ = f.Read(buf[:])
			f.Close()
		}
		cfg.Key = fmt.Sprintf("%x", buf)
	}
	for _, e := range csps {
		name, path, ok := strings.Cut(e, "=")
		if !ok {
			return fmt.Errorf("bad -csp %q, want name=path-or-url", e)
		}
		if strings.HasPrefix(path, "http://") || strings.HasPrefix(path, "https://") {
			if *cspToken == "" {
				return fmt.Errorf("-csp %q is an HTTP provider: set -csptoken", name)
			}
			cfg.CSPs = append(cfg.CSPs, cspEntry{Name: name, Path: path})
			continue
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		cfg.CSPs = append(cfg.CSPs, cspEntry{Name: name, Path: abs})
	}
	data, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfgPath, append(data, '\n'), 0o600); err != nil {
		return err
	}
	fmt.Printf("initialized %s with %d providers (t=%d)\nkeep the key safe: without it nothing is readable\n",
		cfgPath, len(cfg.CSPs), cfg.T)
	return nil
}

func openClient(cfgPath string) (*cyrus.Client, error) {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, fmt.Errorf("read config: %w (run 'cyrusctl init' first)", err)
	}
	var cfg config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return nil, fmt.Errorf("parse config: %w", err)
	}
	var stores []cyrus.Store
	ctx := context.Background()
	for _, e := range cfg.CSPs {
		var s cyrus.Store
		token := "local"
		if strings.HasPrefix(e.Path, "http://") || strings.HasPrefix(e.Path, "https://") {
			s = cyrus.NewHTTPStore(e.Name, e.Path)
			token = cfg.CSPToken
		} else {
			ds, err := cyrus.NewDirStore(e.Name, e.Path)
			if err != nil {
				return nil, err
			}
			s = ds
		}
		if err := s.Authenticate(ctx, cyrus.Credentials{Token: token}); err != nil {
			return nil, err
		}
		stores = append(stores, s)
	}
	return cyrus.New(cyrus.Config{
		ClientID:         cfg.ClientID,
		Key:              cfg.Key,
		T:                cfg.T,
		N:                cfg.N,
		MetaShards:       cfg.MetaShards,
		MetaCacheEntries: cfg.MetaCacheEntries,
		TreeRetention:    cfg.TreeRetention,
		Classes:          cfg.Classes,
		ClassRules:       cfg.ClassRules,
		DefaultClass:     cfg.DefaultClass,
		Obs:              cyrus.NewObserver(),
	}, stores)
}

// cmdClasses syncs once and prints every configured storage class next to
// its live usage: tier, effective (t, n), CSP subset, lifecycle demotion
// rule, and the per-class object/byte tallies (which also refresh the
// cyrus_class_* gauges). -json emits the same as one document.
func cmdClasses(ctx context.Context, c *cyrus.Client, args []string) error {
	fs := flag.NewFlagSet("classes", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit JSON instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := c.Sync(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "classes: sync:", err)
	}
	pol := c.Policy()
	usage := c.ClassStats()
	if *asJSON {
		out := struct {
			DefaultClass string                      `json:"default_class,omitempty"`
			Classes      []cyrus.StorageClass        `json:"classes,omitempty"`
			Rules        []cyrus.ClassRule           `json:"rules,omitempty"`
			Usage        map[string]cyrus.ClassUsage `json:"usage"`
		}{DefaultClass: pol.DefaultClass(), Classes: pol.Classes(), Rules: pol.Rules(), Usage: usage}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Printf("%-12s %-5s %3s %3s %-24s %-20s %8s %12s\n",
		"CLASS", "TIER", "T", "N", "CSPS", "DEMOTE", "OBJECTS", "BYTES")
	row := func(name, tier string, t, n int, csps []string, demote string) {
		u := usage[name]
		label := name
		if name == "" {
			label = "(default)"
		}
		cspCol := "(all)"
		if len(csps) > 0 {
			cspCol = strings.Join(csps, ",")
		}
		fmt.Printf("%-12s %-5s %3d %3d %-24s %-20s %8d %12d\n",
			label, tier, t, n, cspCol, demote, u.Objects, u.Bytes)
	}
	defT, defN := c.Params()
	row("", cyrus.TierHot, defT, defN, nil, "")
	for _, cls := range pol.Classes() {
		t, n := cls.T, cls.N
		if t == 0 {
			t = defT
		}
		if n == 0 {
			n = defN
		}
		demote := ""
		if cls.DemoteTo != "" {
			demote = fmt.Sprintf("%s -> %s", cls.DemoteAfter, cls.DemoteTo)
		}
		row(cls.Name, cls.Tier, t, n, cls.CSPs, demote)
	}
	if def := pol.DefaultClass(); def != "" {
		fmt.Printf("default class: %s\n", def)
	}
	for _, r := range pol.Rules() {
		fmt.Printf("rule: %-24s -> %s\n", r.Prefix+"*", r.Class)
	}
	return nil
}

// cmdReencode moves a file's current version into another storage class
// (the lifecycle migrator's primitive, driven by hand — demote early,
// promote back, or repack after a class edit).
func cmdReencode(ctx context.Context, c *cyrus.Client, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: reencode <name> <class>")
	}
	changed, err := c.ReencodeClass(ctx, args[0], args[1])
	if err != nil {
		return err
	}
	if !changed {
		fmt.Printf("%s is already in class %q\n", args[0], args[1])
		return nil
	}
	fmt.Printf("re-encoded %s into class %q\n", args[0], args[1])
	return nil
}

func cmdPut(ctx context.Context, c *cyrus.Client, args []string) error {
	fs := flag.NewFlagSet("put", flag.ContinueOnError)
	class := fs.String("class", "", "storage-class override for this write (default: policy resolution)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: put [-class name] <file>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	name := filepath.Base(fs.Arg(0))
	// Stream the file: client memory stays bounded by the pipeline window
	// regardless of file size.
	if err := c.PutReaderWith(ctx, name, f, cyrus.PutOptions{Class: *class}); err != nil {
		return err
	}
	fmt.Printf("stored %s (%d bytes)\n", name, st.Size())
	return nil
}

func cmdGet(ctx context.Context, c *cyrus.Client, args []string) error {
	fs := flag.NewFlagSet("get", flag.ContinueOnError)
	out := fs.String("o", "", "output path (default: the file name)")
	version := fs.String("version", "", "specific version id")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: get [-o out] [-version id] <name>")
	}
	name := fs.Arg(0)
	dst := *out
	if dst == "" {
		dst = name
	}
	// Stream into a sibling temp file and rename on success: an interrupted
	// download never leaves a torn file at the destination, and client
	// memory stays bounded by the pipeline window.
	tmp, err := os.CreateTemp(filepath.Dir(dst), "."+filepath.Base(dst)+".partial-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	var info cyrus.FileInfo
	if *version != "" {
		info, err = c.GetVersionTo(ctx, name, *version, tmp)
	} else {
		info, err = c.GetTo(ctx, name, tmp)
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, dst); err != nil {
		os.Remove(tmpName)
		return err
	}
	fmt.Printf("retrieved %s (%d bytes, version %.8s)\n", name, info.Size, info.VersionID)
	if info.Conflicted {
		fmt.Println("warning: this file has conflicting concurrent versions; see 'cyrusctl conflicts'")
	}
	return nil
}

func cmdLs(ctx context.Context, c *cyrus.Client, args []string) error {
	dir := ""
	if len(args) > 0 {
		dir = args[0]
	}
	files, err := c.List(ctx, dir)
	if err != nil {
		return err
	}
	for _, f := range files {
		flag := " "
		if f.Conflicted {
			flag = "!"
		}
		fmt.Printf("%s %10d  %s  %.8s  %s\n", flag, f.Size, f.Modified.Format("2006-01-02 15:04"), f.VersionID, f.Name)
	}
	return nil
}

func cmdHistory(ctx context.Context, c *cyrus.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: history <name>")
	}
	hist, err := c.History(ctx, args[0])
	if err != nil {
		return err
	}
	for i, v := range hist {
		mark := " "
		if i == 0 {
			mark = "*"
		}
		state := ""
		if v.Deleted {
			state = " (deleted)"
		}
		fmt.Printf("%s %s  %10d  %s%s\n", mark, v.VersionID, v.Size, v.Modified.Format("2006-01-02 15:04:05"), state)
	}
	return nil
}

func cmdRm(ctx context.Context, c *cyrus.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: rm <name>")
	}
	return c.Delete(ctx, args[0])
}

func cmdRestore(ctx context.Context, c *cyrus.Client, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: restore <name> <version-id>")
	}
	return c.Restore(ctx, args[0], args[1])
}

func cmdConflicts(ctx context.Context, c *cyrus.Client) error {
	conflicts := c.Conflicts(ctx)
	if len(conflicts) == 0 {
		fmt.Println("no conflicts")
		return nil
	}
	for _, cf := range conflicts {
		fmt.Printf("%s (%s):\n", cf.Name, cf.Type)
		for _, v := range cf.Versions {
			fmt.Printf("  %s  %10d bytes  %s\n", v.VersionID, v.Size, v.Modified.Format("2006-01-02 15:04:05"))
		}
	}
	return nil
}

func cmdResolve(ctx context.Context, c *cyrus.Client, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: resolve <name> <winner-version-id>")
	}
	return c.Resolve(ctx, args[0], args[1])
}

// parseClassSpec parses one -class value: "name,key=val,..." with keys
// tier, t, n, epsilon, csps (plus-separated), metacsps, demote-after (a Go
// duration like 720h), demote-to. Full validation (tier names, demotion
// targets, CSP membership) happens when the client opens the config.
func parseClassSpec(spec string) (cyrus.StorageClass, error) {
	parts := strings.Split(spec, ",")
	cls := cyrus.StorageClass{Name: parts[0]}
	if cls.Name == "" || strings.Contains(cls.Name, "=") {
		return cls, fmt.Errorf("bad -class %q: the first element is the class name", spec)
	}
	for _, p := range parts[1:] {
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			return cls, fmt.Errorf("bad -class element %q in %q, want key=val", p, spec)
		}
		var err error
		switch k {
		case "tier":
			cls.Tier = v
		case "t":
			cls.T, err = strconv.Atoi(v)
		case "n":
			cls.N, err = strconv.Atoi(v)
		case "epsilon":
			cls.Epsilon, err = strconv.ParseFloat(v, 64)
		case "csps":
			cls.CSPs = strings.Split(v, "+")
		case "metacsps":
			cls.MetaCSPs = strings.Split(v, "+")
		case "demote-after":
			cls.DemoteAfter, err = time.ParseDuration(v)
		case "demote-to":
			cls.DemoteTo = v
		default:
			return cls, fmt.Errorf("bad -class key %q in %q", k, spec)
		}
		if err != nil {
			return cls, fmt.Errorf("bad -class value %q=%q in %q: %v", k, v, spec, err)
		}
	}
	return cls, nil
}

// multiFlag collects repeated flag values.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
