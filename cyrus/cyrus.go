// Package cyrus is the public API of this CYRUS reproduction: a
// client-defined cloud storage system that aggregates multiple autonomous
// cloud storage providers (CSPs) into one private, reliable, fast logical
// cloud (Chung et al., "CYRUS: Towards Client-Defined Cloud Storage",
// EuroSys 2015).
//
// Files are split into content-defined chunks; every chunk is encoded with
// a non-systematic (t, n) Reed-Solomon code keyed by the user's secret and
// scattered to n providers, at most one per physical cloud platform. No
// single provider can reconstruct any byte (privacy); any n-t providers
// may fail without data loss (reliability); downloads fetch t shares per
// chunk from providers chosen by an optimizer that minimizes completion
// time (latency). Multiple autonomous clients share files through metadata
// that is itself secret-shared across the providers; concurrent updates
// are uploaded without locking and conflicts are detected and resolved
// from the client.
//
// Quick start:
//
//	stores := []cyrus.Store{ ... }      // e.g. cyrus.NewDirStore per provider
//	client, err := cyrus.New(cyrus.Config{
//		ClientID: "laptop",
//		Key:      "correct horse battery staple",
//		T:        2,                     // privacy: 2 CSPs needed to read
//		Epsilon:  1e-4,                  // reliability bound, picks n
//	}, stores)
//	err = client.Put(ctx, "notes.txt", data)
//	data, info, err := client.Get(ctx, "notes.txt")
//
// See the examples/ directory for runnable programs.
package cyrus

import (
	"repro/internal/cloudsim"
	"repro/internal/core"
	"repro/internal/csp"
	"repro/internal/lifecycle"
	"repro/internal/metadata"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/resthttp"
	"repro/internal/syncdir"
	"repro/internal/topology"
)

// Syncer keeps a local directory bidirectionally synced with a CYRUS
// cloud, the way the prototype's "CYRUS folder" worked (paper §5.4):
// local edits are detected by mtime+hash, remote changes through the
// metadata tree, and conflicts are materialized as sibling
// "<name>.conflict-<client>-<version>" copies.
type Syncer = syncdir.Syncer

// SyncAction describes one operation a Syncer.Sync pass performed.
type SyncAction = syncdir.Action

// NewSyncer builds a folder syncer over an existing directory.
func NewSyncer(client *Client, dir string) (*Syncer, error) {
	return syncdir.New(client, dir)
}

// Re-exported core types. Config documents every knob (privacy level T,
// reliability bound Epsilon or explicit N, chunking, platform clusters,
// download selector, runtime).
type (
	// Config tunes a Client; see core.Config for field documentation.
	Config = core.Config
	// Client is a CYRUS endpoint implementing the paper's Table-3 API.
	Client = core.Client
	// FileInfo describes one stored file version.
	FileInfo = core.FileInfo
	// ConflictInfo describes a detected concurrent-update conflict.
	ConflictInfo = core.ConflictInfo
	// Event is an asynchronous transfer notification.
	Event = core.Event
	// GCStats reports what a garbage collection removed.
	GCStats = core.GCStats

	// Observer is the observability bundle (metrics registry, span tracer,
	// CSP health scoreboard). Attach one via Config.Obs; a nil Observer
	// disables all instrumentation.
	Observer = obs.Observer
	// CSPHealth is one provider's scoreboard row.
	CSPHealth = obs.CSPHealth
	// MetricsSnapshot is a point-in-time copy of an Observer's registry.
	MetricsSnapshot = obs.Snapshot
	// ObserverOptions tunes an observer built with NewObserverWith (span
	// ring size, SLO objectives, flight recorder, load telemetry).
	ObserverOptions = obs.Options
	// FlightDump is one flight-recorder snapshot (trigger, event ring,
	// open spans).
	FlightDump = obs.FlightDump
	// FlightEvent is one structured entry in the flight-recorder ring.
	FlightEvent = obs.FlightEvent
	// CSPLoad is one provider's load-telemetry view (current sample plus
	// the retained window).
	CSPLoad = obs.CSPLoad
	// LoadSample is one sampled point of a provider's load vector.
	LoadSample = obs.LoadSample

	// StorageClass is one named storage-class definition: a CSP subset,
	// per-class (t, n) or Epsilon, chunking, tier, and optional lifecycle
	// demotion rule. Configure via Config.Classes (DESIGN.md §13).
	StorageClass = policy.Class
	// ClassRule maps a name-prefix to a storage class (longest prefix
	// wins); configure via Config.ClassRules.
	ClassRule = policy.Rule
	// PutOptions carries per-request write options (e.g. a storage-class
	// override) for Client.PutWith / Client.PutReaderWith.
	PutOptions = core.PutOptions
	// ClassUsage is one class's live object/byte tally from
	// Client.ClassStats.
	ClassUsage = core.ClassUsage
	// LifecycleMigrator demotes idle objects to colder classes in the
	// background; build one with NewLifecycle.
	LifecycleMigrator = lifecycle.Migrator
	// LifecycleConfig tunes a LifecycleMigrator (client, checkpoint state,
	// worker fan-out).
	LifecycleConfig = lifecycle.Config
	// LifecycleJob is one queued demotion.
	LifecycleJob = lifecycle.Job
	// LifecycleState is the migrator's crash-safe checkpoint store; use
	// NewLifecycleFileState for durability across restarts.
	LifecycleState = lifecycle.State

	// Store is the five-call provider interface (authenticate, list,
	// upload, download, delete) CYRUS requires of a CSP.
	Store = csp.Store
	// Credentials authenticates a Store session.
	Credentials = csp.Credentials
	// Profile is a provider descriptor (the paper's Table-2 registry).
	Profile = csp.Profile
)

// Flight-recorder trigger reason classes and the SLO metric names surfaced
// to CLI/tooling consumers.
const (
	FlightTriggerManual    = obs.TriggerManual
	FlightTriggerInvariant = obs.TriggerInvariant
	MetricSLOOK            = obs.MetricSLOOK
	MetricSLOBreach        = obs.MetricSLOBreach
	// Metadata cache counters (hit ratio = hits / (hits + misses)).
	MetricMetaCacheHits   = obs.MetricMetaCacheHits
	MetricMetaCacheMisses = obs.MetricMetaCacheMisses
	// Load-adaptive redundancy counters: hedge suppression and win/loss
	// accounting for the adaptive controller, plus race-read fan-out and
	// cancelled-byte waste.
	MetricHedgeSuppressed    = obs.MetricHedgeSuppressed
	MetricHedgeWins          = obs.MetricHedgeWins
	MetricHedgeLosses        = obs.MetricHedgeLosses
	MetricRaceLaunched       = obs.MetricRaceLaunched
	MetricRaceCancelledBytes = obs.MetricRaceCancelledBytes
	// Storage-class gauges (per-class live objects/bytes, labeled {class})
	// and lifecycle-migrator counters.
	MetricClassBytes          = obs.MetricClassBytes
	MetricClassObjects        = obs.MetricClassObjects
	MetricLifecycleMigrations = obs.MetricLifecycleMigrations
	MetricLifecycleBytes      = obs.MetricLifecycleBytes
	MetricLifecycleFailures   = obs.MetricLifecycleFailures
	MetricLifecycleQueueDepth = obs.MetricLifecycleQueueDepth
)

// Storage-class tiers.
const (
	TierHot  = policy.TierHot
	TierCold = policy.TierCold
)

// Errors a caller is expected to branch on.
var (
	ErrNoSuchFile   = core.ErrNoSuchFile
	ErrFileDeleted  = core.ErrFileDeleted
	ErrNotEnoughCSP = core.ErrNotEnoughCSP
	ErrDamaged      = core.ErrDamaged
)

// New creates a CYRUS cloud over the given providers — the paper's
// s = create() plus add(s, c) for each provider.
func New(cfg Config, stores []Store) (*Client, error) {
	return core.New(cfg, stores)
}

// NewObserver builds an empty observability bundle to pass as Config.Obs
// (and to share with an HTTP server's /metrics endpoint).
func NewObserver() *Observer { return obs.NewObserver() }

// NewObserverWith builds an observability bundle with explicit options
// (flight-recorder tuning, SLO objectives, span-ring and load-window
// sizes).
func NewObserverWith(opts ObserverOptions) *Observer { return obs.NewObserverWith(opts) }

// NewDirStore returns a provider backed by a local directory — the
// simplest way to run a real CYRUS cloud without commercial accounts
// (point each store at a different mount/disk/remote-synced folder).
func NewDirStore(name, root string) (Store, error) {
	return cloudsim.NewDirStore(name, root)
}

// NewMemStore returns an in-memory provider with the given object-identity
// quirk — useful for tests and demos. Capacity 0 means unlimited.
func NewMemStore(name string, capacity int64) Store {
	return cloudsim.NewSimStore(cloudsim.NewBackend(name, csp.NameKeyed, capacity))
}

// NewHTTPStore returns a connector for a provider speaking the resthttp
// protocol (run one with cmd/cyruscsp, or implement the five endpoints on
// any real service).
func NewHTTPStore(name, baseURL string) Store {
	return resthttp.NewStore(name, baseURL, nil)
}

// Providers returns the built-in Table-2 provider registry.
func Providers() []Profile { return csp.Registry() }

// InferClusters runs the platform-inference pipeline (§4.1) over synthetic
// routes for the named providers, returning provider -> cluster-id in the
// form Config.ClusterOf expects. Providers on shared platforms (per the
// registry) cluster together.
func InferClusters(providerNames []string) (map[string]string, error) {
	prober := &topology.SyntheticProber{PlatformOf: csp.PlatformMap()}
	clusterOf, _, err := topology.InferClusters(prober, providerNames)
	return clusterOf, err
}

// NewLifecycle builds a lifecycle migrator over a class-configured client.
// Call Scan to enqueue idle objects past their class's DemoteAfter age,
// then Run to drain the queue; both are resumable across crashes when the
// config carries a durable state (NewLifecycleFileState).
func NewLifecycle(cfg LifecycleConfig) (*LifecycleMigrator, error) {
	return lifecycle.New(cfg)
}

// NewLifecycleFileState opens (or creates) a crash-safe migrator
// checkpoint file: jobs are persisted before work starts and cleared only
// after the demotion's new placement is fully published.
func NewLifecycleFileState(path string) (LifecycleState, error) {
	return lifecycle.NewFileState(path)
}

// HashData exposes the content-hash used for file and chunk identities
// (hex SHA-1), for callers that want to verify data out of band.
func HashData(data []byte) string { return metadata.HashData(data) }
