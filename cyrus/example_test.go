package cyrus_test

import (
	"context"
	"fmt"
	"log"

	"repro/cyrus"
)

// ExampleNew shows the minimal path: build a cloud over three providers,
// store a file, read it back.
func ExampleNew() {
	ctx := context.Background()
	var stores []cyrus.Store
	for _, name := range []string{"alpha", "beta", "gamma"} {
		s := cyrus.NewMemStore(name, 0)
		if err := s.Authenticate(ctx, cyrus.Credentials{Token: "demo"}); err != nil {
			log.Fatal(err)
		}
		stores = append(stores, s)
	}
	client, err := cyrus.New(cyrus.Config{
		ClientID: "example",
		Key:      "user secret",
		T:        2, // two providers must cooperate to read anything
		N:        3, // one provider may fail without data loss
	}, stores)
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Put(ctx, "hello.txt", []byte("hello, client-defined cloud")); err != nil {
		log.Fatal(err)
	}
	data, info, err := client.Get(ctx, "hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (%d bytes, conflicted=%v)\n", data, info.Size, info.Conflicted)
	// Output: hello, client-defined cloud (27 bytes, conflicted=false)
}

// ExampleClient_History shows versioning: every Put is a new version and
// old ones stay downloadable and restorable.
func ExampleClient_History() {
	ctx := context.Background()
	var stores []cyrus.Store
	for _, name := range []string{"alpha", "beta", "gamma"} {
		s := cyrus.NewMemStore(name, 0)
		_ = s.Authenticate(ctx, cyrus.Credentials{Token: "demo"})
		stores = append(stores, s)
	}
	client, _ := cyrus.New(cyrus.Config{ClientID: "ex", Key: "k", T: 2, N: 3}, stores)

	_ = client.Put(ctx, "doc", []byte("first draft"))
	_ = client.Put(ctx, "doc", []byte("final version"))
	hist, _ := client.History(ctx, "doc")
	fmt.Println("versions:", len(hist))

	old, _, _ := client.GetVersion(ctx, "doc", hist[len(hist)-1].VersionID)
	fmt.Printf("oldest: %s\n", old)

	_ = client.Restore(ctx, "doc", hist[len(hist)-1].VersionID)
	cur, _, _ := client.Get(ctx, "doc")
	fmt.Printf("after restore: %s\n", cur)
	// Output:
	// versions: 2
	// oldest: first draft
	// after restore: first draft
}

// ExampleInferClusters shows platform inference: providers hosted on the
// same cloud platform must not hold two shares of one chunk.
func ExampleInferClusters() {
	clusters, _ := cyrus.InferClusters([]string{"bitcasa", "cloudapp", "dropbox", "box"})
	fmt.Println("bitcasa and cloudapp share a platform:", clusters["bitcasa"] == clusters["cloudapp"])
	fmt.Println("dropbox is independent of bitcasa:", clusters["dropbox"] != clusters["bitcasa"])
	// Output:
	// bitcasa and cloudapp share a platform: true
	// dropbox is independent of bitcasa: true
}
