package cyrus_test

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"

	"repro/cyrus"
)

var ctx = context.Background()

func memCloud(t *testing.T, names ...string) []cyrus.Store {
	t.Helper()
	var stores []cyrus.Store
	for _, n := range names {
		s := cyrus.NewMemStore(n, 0)
		if err := s.Authenticate(ctx, cyrus.Credentials{Token: "t"}); err != nil {
			t.Fatal(err)
		}
		stores = append(stores, s)
	}
	return stores
}

func TestFacadeRoundTrip(t *testing.T) {
	client, err := cyrus.New(cyrus.Config{
		ClientID: "test", Key: "k", T: 2, N: 3,
	}, memCloud(t, "a", "b", "c", "d"))
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("facade"), 1000)
	if err := client.Put(ctx, "f", data); err != nil {
		t.Fatal(err)
	}
	got, info, err := client.Get(ctx, "f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip: %v", err)
	}
	if info.Size != int64(len(data)) {
		t.Fatalf("info = %+v", info)
	}
	if _, _, err := client.Get(ctx, "nope"); !errors.Is(err, cyrus.ErrNoSuchFile) {
		t.Fatalf("err = %v", err)
	}
}

func TestFacadeDirStores(t *testing.T) {
	root := t.TempDir()
	var stores []cyrus.Store
	for _, n := range []string{"a", "b", "c"} {
		s, err := cyrus.NewDirStore(n, filepath.Join(root, n))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Authenticate(ctx, cyrus.Credentials{Token: "t"}); err != nil {
			t.Fatal(err)
		}
		stores = append(stores, s)
	}
	client, err := cyrus.New(cyrus.Config{ClientID: "d", Key: "k", T: 2, N: 3}, stores)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("persisted through real files")
	if err := client.Put(ctx, "disk.txt", data); err != nil {
		t.Fatal(err)
	}

	// A second client over the same directories recovers everything.
	var stores2 []cyrus.Store
	for _, n := range []string{"a", "b", "c"} {
		s, err := cyrus.NewDirStore(n, filepath.Join(root, n))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Authenticate(ctx, cyrus.Credentials{Token: "t"}); err != nil {
			t.Fatal(err)
		}
		stores2 = append(stores2, s)
	}
	client2, err := cyrus.New(cyrus.Config{ClientID: "d2", Key: "k", T: 2, N: 3}, stores2)
	if err != nil {
		t.Fatal(err)
	}
	if err := client2.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	got, _, err := client2.Get(ctx, "disk.txt")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("second device read: %v", err)
	}
}

func TestFacadeHelpers(t *testing.T) {
	if len(cyrus.Providers()) != 20 {
		t.Fatal("provider registry size")
	}
	clusters, err := cyrus.InferClusters([]string{"bitcasa", "cloudapp", "dropbox"})
	if err != nil {
		t.Fatal(err)
	}
	if clusters["bitcasa"] != clusters["cloudapp"] {
		t.Fatal("amazon-hosted providers not clustered together")
	}
	if clusters["dropbox"] == clusters["bitcasa"] {
		t.Fatal("dropbox wrongly clustered with amazon")
	}
	if cyrus.HashData([]byte("abc")) != "a9993e364706816aba3e25717850c26c9cd0d89d" {
		t.Fatal("HashData changed")
	}
}
