// Package repro's root benchmarks regenerate every table and figure of the
// paper through the testing.B interface, so
//
//	go test -bench=. -benchmem
//
// exercises the full reproduction pipeline. Each benchmark wraps the
// corresponding internal/experiments harness at a benchmark-friendly scale
// (absolute dataset sizes are scaled; the simulated network and all
// algorithms are the real ones). cmd/cyrusbench runs the same experiments
// at paper scale and prints the tables.
package repro

import (
	"testing"

	"repro/internal/experiments"
)

// reportMetric stashes an experiment's headline number as a custom metric
// so bench output carries reproduction data, not just runtimes.
func reportMetric(b *testing.B, name string, v float64) {
	b.Helper()
	b.ReportMetric(v, name)
}

func BenchmarkTable1FeatureMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1()
		if len(r.Rows) != 5 {
			b.Fatal("table 1 shape")
		}
	}
}

func BenchmarkTable2ProviderSurvey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table2()
		if len(r.Rows) != 20 {
			b.Fatal("table 2 shape")
		}
	}
}

func BenchmarkTable4Dataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(1, 0.02); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3Clustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Clusters) != 16 {
			b.Fatal("cluster count")
		}
	}
}

func BenchmarkFigure12Encode(b *testing.B) {
	cfg := experiments.Figure12Config{ChunkBytes: 16 << 20, TValues: []int{2, 3}, NValues: []int{3, 5}, Seed: 1}
	b.SetBytes(int64(cfg.ChunkBytes))
	var last experiments.Figure12Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure12(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if len(last.Points) > 0 {
		reportMetric(b, "enc23-MB/s", last.Points[0].EncodeMBps)
	}
}

func BenchmarkFigure13FailureSim(b *testing.B) {
	var last experiments.Figure13Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure13(experiments.Figure13Config{Trials: 1_000_000, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportMetric(b, "cyrus34-failures", float64(last.Cyrus34))
	reportMetric(b, "bestCSP-failures", float64(last.SingleCSP[0]))
}

func BenchmarkFigure14SelectorComparison(b *testing.B) {
	var last experiments.Figure14Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure14(experiments.TestbedConfig{Scale: 0.02, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportMetric(b, "cyrus23-mean-s", last.MeanDownload["(2,3)"]["cyrus"])
	reportMetric(b, "random23-mean-s", last.MeanDownload["(2,3)"]["random"])
}

func BenchmarkFigure15Cumulative(b *testing.B) {
	var last experiments.Figure15Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure15(experiments.TestbedConfig{Scale: 0.02, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportMetric(b, "up34-s", last.CumulativeUpload["(3,4)"])
	reportMetric(b, "up23-s", last.CumulativeUpload["(2,3)"])
}

func BenchmarkFigure16SchemeComparison(b *testing.B) {
	var last experiments.Figure16Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure16(experiments.Figure16Config{FileBytes: 8 << 20, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportMetric(b, "cyrus-down-s", last.Download["cyrus"])
	reportMetric(b, "depsky-down-s", last.Download["depsky"])
}

func BenchmarkFigure17Hourly(b *testing.B) {
	var last experiments.Figure17Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure17(experiments.HourlyConfig{Samples: 12, FileBytes: 1 << 19, Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportMetric(b, "cyrus-up-median-s", last.CyrusUpload.Median)
	reportMetric(b, "depsky-up-median-s", last.DepskyUpload.Median)
}

func BenchmarkFigure18ShareDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure18(experiments.HourlyConfig{Samples: 12, FileBytes: 1 << 19, Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Cyrus) == 0 || len(res.Depsky) == 0 {
			b.Fatal("empty distribution")
		}
	}
}

func BenchmarkFigure19Trial(b *testing.B) {
	var last experiments.Figure19Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure19(experiments.TrialConfig{FileBytes: 4 << 20, Seed: 13})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		if row.Region == "kr" && row.Scheme == "cyrus(2,3)" {
			reportMetric(b, "kr-cyrus23-up-s", row.Upload)
		}
	}
}

func BenchmarkAblationSelector(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSelector(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationChunking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationChunking(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRing(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMigration(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationConcurrency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationConcurrency(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMetadata(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMetadata(1); err != nil {
			b.Fatal(err)
		}
	}
}
