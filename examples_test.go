package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program end to end: each is a
// self-contained demo that must exit 0 and print its expected headline.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples in -short mode")
	}
	cases := []struct {
		dir    string
		expect string // substring the output must contain
	}{
		{"quickstart", "read back"},
		{"filesharing", "after resolve, conflicts: 0"},
		{"failover", "intact=true"},
		{"markets", "concentration"},
		{"syncfolder", "deletion propagated"},
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(cases) {
		t.Fatalf("examples/ has %d entries but %d are tested — keep this test in sync", len(entries), len(cases))
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", tc.dir))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", tc.dir, err, out)
			}
			if !strings.Contains(string(out), tc.expect) {
				t.Fatalf("example %s output missing %q:\n%s", tc.dir, tc.expect, out)
			}
		})
	}
}
