// Failover: size the reliability parameter from a target failure bound
// (Eq. 1), survive a provider outage, remove the provider, and watch
// shares migrate lazily to a replacement — the paper's §4.2 + §5.5
// lifecycle.
//
//	go run ./examples/failover
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/cyrus"
	"repro/internal/cloudsim"
	"repro/internal/csp"
	"repro/internal/reliability"
)

func main() {
	ctx := context.Background()

	// Five provider accounts.
	names := []string{"dropbox", "google-drive", "onedrive", "box", "sugarsync"}
	backends := map[string]*cloudsim.Backend{}
	var stores []cyrus.Store
	for _, n := range names {
		b := cloudsim.NewBackend(n, csp.NameKeyed, 0)
		backends[n] = b
		s := cloudsim.NewSimStore(b)
		if err := s.Authenticate(ctx, cyrus.Credentials{Token: "demo"}); err != nil {
			log.Fatal(err)
		}
		stores = append(stores, s)
	}

	// Reliability planning: how many shares must each chunk have so the
	// probability of unreadability stays under 1e-6, given CSPs that are
	// down ~18 hours a year (the worst CSP the paper monitored)?
	p := reliability.FailureProbFromDowntime(18.53)
	plan, err := reliability.Choose(2, p, 1e-6, len(names))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-CSP failure probability %.2e, bound 1e-6 -> (t,n) = (%d,%d), storage overhead %.2fx\n",
		p, plan.T, plan.N, plan.StorageOverhead())

	client, err := cyrus.New(cyrus.Config{
		ClientID: "failover-demo",
		Key:      "resilience-key",
		T:        plan.T,
		N:        plan.N,
	}, stores)
	if err != nil {
		log.Fatal(err)
	}

	data := make([]byte, 256<<10)
	rand.New(rand.NewSource(1)).Read(data)
	if err := client.Put(ctx, "important.db", data); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored important.db (%d bytes) across %d providers\n", len(data), len(names))

	// A provider holding shares goes dark. n-t providers may fail; reads
	// keep working.
	victim := ""
	for _, n := range names {
		if len(client.ChunkTable().SharesOn(n)) > 0 {
			victim = n
			break
		}
	}
	backends[victim].SetAvailable(false)
	fmt.Printf("%s is now down...\n", victim)
	got, _, err := client.Get(ctx, "important.db")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read during outage: intact=%v\n", bytes.Equal(got, data))

	// The user gives up on the provider and removes it. Nothing moves yet
	// (lazy migration): moving everything at once would be wasteful if the
	// provider came back.
	if err := client.RemoveCSP(ctx, victim); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("removed %s; chunks still mapped there: %d\n", victim, len(client.ChunkTable().SharesOn(victim)))

	// The next download heals the touched file in passing: stale shares
	// are rebuilt from the decoded chunks and re-uploaded elsewhere.
	if _, _, err := client.Get(ctx, "important.db"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after one download, chunks still mapped to %s: %d\n",
		victim, len(client.ChunkTable().SharesOn(victim)))
	for _, n := range names {
		if n == victim {
			continue
		}
		fmt.Printf("  %-13s now holds shares of %d chunks\n", n, len(client.ChunkTable().SharesOn(n)))
	}

	// Full reliability is restored: any single remaining provider can fail.
	second := ""
	for _, n := range names {
		if n != victim && len(client.ChunkTable().SharesOn(n)) > 0 {
			second = n
			break
		}
	}
	backends[second].SetAvailable(false)
	got, _, err = client.Get(ctx, "important.db")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read with %s removed AND %s down: intact=%v\n", victim, second, bytes.Equal(got, data))
}
