// Syncfolder: the prototype's "CYRUS folder" experience (paper §5.4 and
// Figure 11b) — two devices each keep a local directory; editing files in
// either directory and running sync converges both through the cloud,
// including a conflicting concurrent edit materialized as a sibling copy.
//
//	go run ./examples/syncfolder
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/cyrus"
	"repro/internal/cloudsim"
	"repro/internal/csp"
)

func main() {
	ctx := context.Background()

	// Shared provider accounts.
	backends := []*cloudsim.Backend{
		cloudsim.NewBackend("dropbox", csp.NameKeyed, 0),
		cloudsim.NewBackend("google-drive", csp.IDKeyed, 0),
		cloudsim.NewBackend("box", csp.IDKeyed, 0),
	}
	device := func(id string) (*cyrus.Client, string, *cyrus.Syncer) {
		var stores []cyrus.Store
		for _, b := range backends {
			s := cloudsim.NewSimStore(b)
			if err := s.Authenticate(ctx, cyrus.Credentials{Token: id}); err != nil {
				log.Fatal(err)
			}
			stores = append(stores, s)
		}
		client, err := cyrus.New(cyrus.Config{ClientID: id, Key: "family-key", T: 2, N: 3}, stores)
		if err != nil {
			log.Fatal(err)
		}
		dir, err := os.MkdirTemp("", "cyrus-"+id+"-*")
		if err != nil {
			log.Fatal(err)
		}
		sy, err := cyrus.NewSyncer(client, dir)
		if err != nil {
			log.Fatal(err)
		}
		return client, dir, sy
	}

	_, laptopDir, laptopSync := device("laptop")
	_, desktopDir, desktopSync := device("desktop")
	defer os.RemoveAll(laptopDir)
	defer os.RemoveAll(desktopDir)

	report := func(who string, actions []cyrus.SyncAction) {
		if len(actions) == 0 {
			fmt.Printf("%-8s up to date\n", who)
			return
		}
		for _, a := range actions {
			fmt.Printf("%-8s %-13s %s\n", who, a.Op, a.Name)
		}
	}

	// Work on the laptop...
	write(laptopDir, "thesis/chapter1.md", "# Chapter 1\nIt was a dark and stormy night.\n")
	write(laptopDir, "thesis/notes.txt", "remember to cite DepSky\n")
	actions, err := laptopSync.Sync(ctx)
	if err != nil {
		log.Fatal(err)
	}
	report("laptop", actions)

	// ...pull it down on the desktop...
	actions, err = desktopSync.Sync(ctx)
	if err != nil {
		log.Fatal(err)
	}
	report("desktop", actions)
	fmt.Printf("desktop now has: %q\n", read(desktopDir, "thesis/notes.txt"))

	// ...edit on the desktop, delete on the laptop, and converge.
	write(desktopDir, "thesis/chapter1.md", "# Chapter 1\nRewritten opening, much better.\n")
	if _, err := desktopSync.Sync(ctx); err != nil {
		log.Fatal(err)
	}
	if err := os.Remove(filepath.Join(laptopDir, "thesis/notes.txt")); err != nil {
		log.Fatal(err)
	}
	actions, err = laptopSync.Sync(ctx)
	if err != nil {
		log.Fatal(err)
	}
	report("laptop", actions)
	actions, err = desktopSync.Sync(ctx)
	if err != nil {
		log.Fatal(err)
	}
	report("desktop", actions)

	fmt.Printf("laptop chapter1: %q\n", read(laptopDir, "thesis/chapter1.md"))
	if _, err := os.Stat(filepath.Join(desktopDir, "thesis/notes.txt")); os.IsNotExist(err) {
		fmt.Println("desktop: notes.txt deletion propagated")
	}
}

func write(dir, rel, content string) {
	dst := filepath.Join(dir, filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(dst, []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
}

func read(dir, rel string) string {
	data, err := os.ReadFile(filepath.Join(dir, filepath.FromSlash(rel)))
	if err != nil {
		log.Fatal(err)
	}
	return string(data)
}
