// Filesharing: two autonomous clients share files through the same CSP
// accounts with no client-to-client channel, update the same document
// concurrently, and resolve the resulting conflict — the paper's Figure 8
// scenario, end to end.
//
//	go run ./examples/filesharing
package main

import (
	"context"
	"fmt"
	"log"

	"repro/cyrus"
	"repro/internal/cloudsim"
	"repro/internal/csp"
)

func main() {
	ctx := context.Background()

	// Shared provider accounts: one backend per CSP, one authenticated
	// view per device (exactly how two laptops share one Dropbox account).
	backends := []*cloudsim.Backend{
		cloudsim.NewBackend("dropbox", csp.NameKeyed, 0),
		cloudsim.NewBackend("google-drive", csp.IDKeyed, 0),
		cloudsim.NewBackend("onedrive", csp.IDKeyed, 0),
		cloudsim.NewBackend("box", csp.IDKeyed, 0),
	}
	newDevice := func(id string) *cyrus.Client {
		var stores []cyrus.Store
		for _, b := range backends {
			s := cloudsim.NewSimStore(b)
			if err := s.Authenticate(ctx, cyrus.Credentials{Token: id}); err != nil {
				log.Fatal(err)
			}
			stores = append(stores, s)
		}
		c, err := cyrus.New(cyrus.Config{ClientID: id, Key: "family-shared-key", T: 2, N: 3}, stores)
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	alice := newDevice("alice-laptop")
	bob := newDevice("bob-desktop")

	// Alice shares a document; Bob sees it with nothing but the shared key.
	base := []byte("Meeting notes v1: agree on the roadmap.\n")
	if err := alice.Put(ctx, "notes.md", base); err != nil {
		log.Fatal(err)
	}
	got, _, err := bob.Get(ctx, "notes.md")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob reads alice's file: %q\n", got)

	// Concurrent updates: neither client can lock anything (the providers
	// don't support it), so CYRUS lets everyone upload and detects the
	// divergence afterwards (paper Figure 8). Alice edits the shared file;
	// meanwhile carol — a device that has never synced — creates a file
	// with the same name independently: the "same-name creation" conflict.
	if err := alice.Put(ctx, "notes.md", append(base, []byte("- alice: ship on Friday\n")...)); err != nil {
		log.Fatal(err)
	}
	// Carol's phone is on a flaky connection: her save happens while the
	// metadata listing is unreachable (two injected failures per provider,
	// enough to exhaust the transfer engine's retry), so she writes against
	// a stale — here empty — replica, exactly the nonzero-delay race of
	// §5.4. The share and metadata uploads that follow succeed.
	carol := newDevice("carol-phone")
	for _, b := range backends {
		b.FailNext(2)
	}
	if err := carol.Put(ctx, "notes.md", []byte("Meeting notes (carol's fresh copy)\n")); err != nil {
		log.Fatal(err)
	}

	// Everyone now sees the conflict.
	conflicts := alice.Conflicts(ctx)
	fmt.Printf("alice detects %d conflict(s):\n", len(conflicts))
	var winner string
	for _, cf := range conflicts {
		fmt.Printf("  %s (%s):\n", cf.Name, cf.Type)
		for _, v := range cf.Versions {
			fmt.Printf("    version %.8s  %d bytes\n", v.VersionID, v.Size)
			m, err := alice.Tree().Get(v.VersionID)
			if err == nil && m.File.ClientID == "alice-laptop" {
				winner = v.VersionID
			}
		}
	}
	if winner == "" && len(conflicts) > 0 {
		winner = conflicts[0].Versions[0].VersionID
	}

	// Reads still work during a conflict — CYRUS serves the deterministic
	// head and flags it.
	data, info, err := bob.Get(ctx, "notes.md")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob's read during conflict (flagged=%v): %q\n", info.Conflicted, firstLine(data))

	// Alice resolves in favor of her edit; the losing branch becomes a
	// tombstone but stays in history.
	if err := alice.Resolve(ctx, "notes.md", winner); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after resolve, conflicts: %d\n", len(bob.Conflicts(ctx)))
	data, info, _ = bob.Get(ctx, "notes.md")
	fmt.Printf("bob's read after resolve (flagged=%v): %q\n", info.Conflicted, firstLine(data))
}

func firstLine(b []byte) string {
	for i, c := range b {
		if c == '\n' {
			return string(b[:i])
		}
	}
	return string(b)
}
