// Markets: a small agent simulation of the paper's §8 argument — without
// CYRUS, vendor lock-in concentrates users on whichever CSP they joined
// first; with CYRUS, every user spreads shares across many CSPs, demand
// evens out, and late market entrants still acquire stored bytes.
//
//	go run ./examples/markets
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/cyrus"
	"repro/internal/cloudsim"
	"repro/internal/csp"
)

const (
	users        = 40
	filesPerUser = 6
	fileBytes    = 32 << 10
)

func main() {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))

	// Five CSPs entering the market at different times: by the time csp-e
	// launches, most users already picked a home.
	providers := []string{"csp-a", "csp-b", "csp-c", "csp-d", "csp-e"}
	entryUser := map[string]int{"csp-a": 0, "csp-b": 0, "csp-c": 8, "csp-d": 16, "csp-e": 28}

	// --- World 1: lock-in. Each user stores everything at the provider
	// that existed when they arrived (weighted to the incumbents).
	lockedBytes := map[string]int64{}
	for u := 0; u < users; u++ {
		var available []string
		for _, p := range providers {
			if entryUser[p] <= u {
				available = append(available, p)
			}
		}
		// Early providers accumulated reputation: pick with weight
		// inversely proportional to entry time.
		choice := available[0]
		if rng.Float64() < 0.3 && len(available) > 1 {
			choice = available[rng.Intn(len(available))]
		}
		lockedBytes[choice] += filesPerUser * fileBytes
	}

	// --- World 2: CYRUS. Each user runs a client over every provider
	// available at their arrival and scatters (2,3) shares by consistent
	// hashing; a provider added later picks up share traffic from every
	// subsequent upload (hashring rebalances ~1/k of placements to it).
	backends := map[string]*cloudsim.Backend{}
	for _, p := range providers {
		backends[p] = cloudsim.NewBackend(p, csp.NameKeyed, 0)
	}
	for u := 0; u < users; u++ {
		var stores []cyrus.Store
		for _, p := range providers {
			if entryUser[p] > u {
				continue
			}
			s := cloudsim.NewSimStore(backends[p])
			if err := s.Authenticate(ctx, cyrus.Credentials{Token: "u"}); err != nil {
				log.Fatal(err)
			}
			stores = append(stores, s)
		}
		// N is derived from the reliability bound and the providers this
		// user has: early users with two CSPs store (2,2); once more CSPs
		// exist, uploads widen automatically.
		client, err := cyrus.New(cyrus.Config{
			ClientID: fmt.Sprintf("user-%02d", u),
			Key:      fmt.Sprintf("key-%02d", u),
			T:        2,
			Epsilon:  1e-4,
		}, stores)
		if err != nil {
			log.Fatal(err)
		}
		for f := 0; f < filesPerUser; f++ {
			data := make([]byte, fileBytes)
			rng.Read(data)
			if err := client.Put(ctx, fmt.Sprintf("file-%d", f), data); err != nil {
				log.Fatal(err)
			}
		}
	}
	cyrusBytes := map[string]int64{}
	for _, p := range providers {
		cyrusBytes[p] = backends[p].Stats().UsedBytes
	}

	// --- Compare.
	fmt.Println("stored bytes per provider (market share):")
	fmt.Printf("%-8s  %22s  %22s\n", "provider", "lock-in world", "CYRUS world")
	var lockTotal, cyTotal int64
	for _, p := range providers {
		lockTotal += lockedBytes[p]
		cyTotal += cyrusBytes[p]
	}
	for _, p := range providers {
		fmt.Printf("%-8s  %12d (%5.1f%%)  %12d (%5.1f%%)\n", p,
			lockedBytes[p], 100*float64(lockedBytes[p])/float64(lockTotal),
			cyrusBytes[p], 100*float64(cyrusBytes[p])/float64(cyTotal))
	}
	fmt.Printf("\nconcentration (largest provider's share): lock-in %.1f%%, CYRUS %.1f%%\n",
		100*maxShare(lockedBytes, lockTotal), 100*maxShare(cyrusBytes, cyTotal))
	fmt.Printf("late entrant csp-e:                        lock-in %.1f%%, CYRUS %.1f%%\n",
		100*float64(lockedBytes["csp-e"])/float64(lockTotal),
		100*float64(cyrusBytes["csp-e"])/float64(cyTotal))
	fmt.Printf("total bytes stored: lock-in %d, CYRUS %d (x%.2f — the n/t redundancy premium the paper predicts)\n",
		lockTotal, cyTotal, float64(cyTotal)/float64(lockTotal))
}

func maxShare(m map[string]int64, total int64) float64 {
	var vals []int64
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })
	if total == 0 {
		return 0
	}
	return float64(vals[0]) / float64(total)
}
