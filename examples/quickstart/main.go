// Quickstart: build a CYRUS cloud over four in-memory providers, store a
// file, inspect how it was scattered, and read it back.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"repro/cyrus"
)

func main() {
	ctx := context.Background()

	// Four provider accounts. In production these would be directory-backed
	// stores (cyrus.NewDirStore) or real connectors; the API is identical.
	var stores []cyrus.Store
	for _, name := range []string{"dropbox", "google-drive", "onedrive", "box"} {
		s := cyrus.NewMemStore(name, 0)
		if err := s.Authenticate(ctx, cyrus.Credentials{Token: "demo"}); err != nil {
			log.Fatal(err)
		}
		stores = append(stores, s)
	}

	// Platform clustering (paper §4.1): providers on shared infrastructure
	// never hold two shares of the same chunk.
	clusters, err := cyrus.InferClusters([]string{"dropbox", "google-drive", "onedrive", "box"})
	if err != nil {
		log.Fatal(err)
	}

	client, err := cyrus.New(cyrus.Config{
		ClientID:  "quickstart",
		Key:       "correct horse battery staple", // the user secret: derives coding + share names
		T:         2,                              // privacy: two providers needed to read anything
		N:         3,                              // reliability: one provider may vanish
		ClusterOf: clusters,
	}, stores)
	if err != nil {
		log.Fatal(err)
	}

	// Store a file.
	content := bytes.Repeat([]byte("CYRUS turns many rigid clouds into one you define. "), 2000)
	if err := client.Put(ctx, "manifesto.txt", content); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored manifesto.txt: %d bytes\n", len(content))

	// What does each provider actually see? Opaque share objects only.
	for _, s := range stores {
		objs, err := s.List(ctx, "")
		if err != nil {
			log.Fatal(err)
		}
		var total int64
		for _, o := range objs {
			total += o.Size
		}
		fmt.Printf("  %-13s %2d objects, %7d bytes (no names, no plaintext, < t shares of any chunk)\n",
			s.Name(), len(objs), total)
	}

	// Read it back.
	got, info, err := client.Get(ctx, "manifesto.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back %d bytes, version %.8s, conflicted=%v\n", len(got), info.VersionID, info.Conflicted)
	if !bytes.Equal(got, content) {
		log.Fatal("round trip mismatch")
	}

	// Edit and store again: content-defined chunking + dedup mean only the
	// changed chunks are re-uploaded, and history is kept.
	edited := append(append([]byte{}, content...), []byte("Edited!")...)
	if err := client.Put(ctx, "manifesto.txt", edited); err != nil {
		log.Fatal(err)
	}
	hist, err := client.History(ctx, "manifesto.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("history has %d versions; old versions remain downloadable:\n", len(hist))
	for _, v := range hist {
		fmt.Printf("  %.8s  %d bytes  %s\n", v.VersionID, v.Size, v.Modified.Format("15:04:05"))
	}
	old, _, err := client.GetVersion(ctx, "manifesto.txt", hist[len(hist)-1].VersionID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fetched original version: %d bytes, intact=%v\n", len(old), bytes.Equal(old, content))
}
